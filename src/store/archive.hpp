/**
 * @file
 * Recording archive: a segmented, compressed, checkpoint-indexed
 * container for DeLorean recordings.
 *
 * A .dlr recording serializes every log as one monolithic stream —
 * replaying the interval I(n, m) still pays for loading and parsing
 * the whole thing. The archive (.dla) cuts the recording into
 * *segments* at system-checkpoint GCC boundaries:
 *
 *   file  := header  segment*  footer  trailer
 *   header:= magic "DeLoArcv" (u64)  version (u64)
 *   segment := segMagic "DeLoSeg." (u64)  index (u64)
 *              rawBytes (u64)  compBytes (u64)  crc32 (u64)
 *              payload [compBytes]           -- LZ77-compressed
 *   footer := LZ77-compressed metadata + per-segment index
 *             (endGcc, file offset, sizes, CRC, per-proc log bit
 *             positions, and the boundary SystemCheckpoint)
 *   trailer:= footerOffset (u64)  footerCompBytes (u64)
 *             footerRawBytes (u64)  footerCrc32 (u64)
 *             endMagic "DeLoArcZ" (u64)
 *
 * Segment i holds the log slices covering the GCC interval
 * (ckpt[i-1].gcc, ckpt[i].gcc]; a final tail segment covers from the
 * last checkpoint to the end of the run. Every payload carries the
 * CRC-32 of its compressed bytes, so corruption is *detected* — a
 * typed ArchiveError naming the section and segment — never a crash
 * or a silent divergence. The reader seeks to a checkpoint in O(1)
 * via the footer index and decodes only the segments covering the
 * requested interval.
 */

#ifndef DELOREAN_STORE_ARCHIVE_HPP_
#define DELOREAN_STORE_ARCHIVE_HPP_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/errors.hpp"
#include "core/checkpoint.hpp"
#include "core/recording.hpp"
#include "store/mmap_file.hpp"

namespace delorean
{

class WorkerPool;

/**
 * Data-plane knobs for archive I/O.
 *
 * Segments are independent by construction, so their LZ77
 * compression (writer) and CRC-check + decompression + parse
 * (reader) fan out over a WorkerPool; commit order is always segment
 * order, so container bytes and reassembled recordings are identical
 * at any thread count. mmapReads selects the zero-copy read path for
 * file-backed readers: the container is mapped once and payloads are
 * decoded straight out of the mapping, falling back to buffered
 * reads when mapping fails or the platform has no mmap.
 */
struct ArchiveIoOptions
{
    /// Codec worker count; 0 resolves to defaultArchiveIoThreads().
    unsigned ioThreads = 0;

    /// File-backed readers try mmap first (ignored by fromBytes).
    bool mmapReads = true;

    /** ioThreads with the 0-default resolved. */
    unsigned resolvedIoThreads() const;
};

/**
 * Default codec worker count: the DELOREAN_JOBS environment variable
 * if set to a positive integer, otherwise the host's hardware
 * concurrency (at least 1) — the same resolution campaigns use.
 */
unsigned defaultArchiveIoThreads();

/** Structural region of an archive file an error can point at. */
enum class ArchiveSection
{
    kFileHeader,
    kSegment,
    kFooter,
    kTrailer,
    /// Not a byte region: an interval request named a checkpoint the
    /// container does not hold (see CheckpointOutOfRangeError).
    kCheckpointIndex,
};

const char *archiveSectionName(ArchiveSection section);

/**
 * A malformed or corrupted archive. Subtype of RecordingFormatError
 * so every existing handler that fences the loading layer also fences
 * archive parsing; carries the failing section and (for segment
 * errors) the zero-based segment id.
 */
class ArchiveError : public RecordingFormatError
{
  public:
    static constexpr std::size_t kNoSegment =
        static_cast<std::size_t>(-1);

    ArchiveError(ArchiveSection section, std::size_t segment,
                 const std::string &what);

    ArchiveSection section() const { return section_; }

    /** Failing segment id, or kNoSegment for non-segment sections. */
    std::size_t segment() const { return segment_; }

  private:
    ArchiveSection section_;
    std::size_t segment_;
};

/**
 * An interval request named a checkpoint outside what the container
 * holds — an index past the checkpoint count, an invalid (from, to)
 * pair, or (for ring archives) a cycle older than the retained
 * window. Distinct from corruption: the container is fine, the data
 * is simply not (or no longer) there, and callers can recover by
 * re-ranging the request against available().
 */
class CheckpointOutOfRangeError : public ArchiveError
{
  public:
    CheckpointOutOfRangeError(std::size_t index, std::size_t available,
                              const std::string &what);

    /** The checkpoint index (or count proxy) the request named. */
    std::size_t index() const { return index_; }

    /** Checkpoints the container actually holds. */
    std::size_t available() const { return available_; }

  private:
    std::size_t index_;
    std::size_t available_;
};

/** Footer index entry: everything known about one segment. */
struct ArchiveSegmentInfo
{
    /// GCC at the end of this segment's interval (== the boundary
    /// checkpoint's GCC, or the recording's final GCC for the tail).
    std::uint64_t endGcc = 0;
    std::uint64_t fileOffset = 0; ///< of the segment header
    std::uint64_t rawBytes = 0;   ///< decompressed payload size
    std::uint64_t compBytes = 0;  ///< stored payload size
    std::uint64_t crc32 = 0;      ///< CRC-32 of the compressed payload

    /// Cumulative bit positions in the raw bit-packed memory-ordering
    /// logs at this segment's end — where a hardware recorder's log
    /// write pointers stood at the checkpoint.
    std::uint64_t piBitsEnd = 0;
    std::uint64_t strataBitsEnd = 0;
    std::vector<std::uint64_t> csBitsEnd; ///< one per processor

    bool hasCheckpoint = false;   ///< false only for the tail segment
    SystemCheckpoint checkpoint;  ///< boundary state (if hasCheckpoint)
};

/**
 * Streams a Recording into an archive: segments are cut at the
 * recording's checkpoint GCCs and written one at a time, then the
 * footer index and trailer. Requires checkpoints in strictly
 * ascending GCC order (the recorder emits them that way).
 */
class ArchiveWriter
{
  public:
    explicit ArchiveWriter(std::ostream &out,
                           const ArchiveIoOptions &io = {})
        : out_(&out), io_(io)
    {
    }

    /** Write the whole archive. Call once. */
    void write(const Recording &rec);

    /** Segments emitted (checkpoints + tail), after write(). */
    std::size_t segmentCount() const { return segments_.size(); }

  private:
    std::ostream *out_;
    ArchiveIoOptions io_;
    std::uint64_t offset_ = 0;
    std::vector<ArchiveSegmentInfo> segments_;

    void putBytes(const std::uint8_t *data, std::size_t size);
    void putU64(std::uint64_t v);
};

/**
 * Incremental archive writer: emits segments while the recording is
 * still being produced, overlapping LZ77 compression and file I/O
 * with the rest of the simulation.
 *
 * Wire onCheckpoint() into EngineOptions::onCheckpoint (or call it
 * after record() on a finished recording — both feed paths produce
 * the same bytes): each call consumes every not-yet-streamed
 * checkpoint, cuts the covered segments, and *stages* them — the
 * payload slice is serialized synchronously (the recording's logs
 * keep growing after the hook returns), while compression, CRC and
 * the file write happen on a background flusher thread that fans the
 * codec work over the same WorkerPool path ArchiveWriter uses.
 * Staging is double-buffered: while one batch compresses and writes,
 * the next accumulates, and the recording thread never blocks on the
 * codec. close() streams any remaining checkpoints, cuts the tail
 * segment, drains the flusher, and writes the footer index and
 * trailer.
 *
 * The emitted container is byte-identical to writeArchive() of the
 * finished recording, at any ioThreads. Checkpoints must arrive in
 * ascending GCC order (the recorder emits them that way); violations
 * throw the same RecordingFormatError as the batch writer. A flusher
 * failure is rethrown from the next onCheckpoint()/close() call.
 */
class StreamingArchiveWriter
{
  public:
    explicit StreamingArchiveWriter(std::ostream &out,
                                    const ArchiveIoOptions &io = {});
    ~StreamingArchiveWriter();

    StreamingArchiveWriter(const StreamingArchiveWriter &) = delete;
    StreamingArchiveWriter &
    operator=(const StreamingArchiveWriter &) = delete;

    /**
     * Stream every checkpoint of @p rec not yet consumed (usually
     * exactly one when wired into EngineOptions::onCheckpoint).
     * Segment payloads are cut synchronously; codec + I/O proceed in
     * the background.
     */
    void onCheckpoint(const Recording &rec);

    /**
     * Finish the archive: stream any remaining checkpoints, cut the
     * tail segment, drain all pending codec/write work, and emit the
     * footer index and trailer. Call once, with the finished
     * recording.
     */
    void close(const Recording &rec);

    /** True after a successful close(). */
    bool closed() const;

    /** Segments emitted so far (all staged + flushed ones). */
    std::size_t segmentCount() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Archive @p rec to @p out. */
void writeArchive(const Recording &rec, std::ostream &out,
                  const ArchiveIoOptions &io = {});

/** Archive @p rec to file @p path. */
void writeArchiveFile(const Recording &rec, const std::string &path,
                      const ArchiveIoOptions &io = {});

/**
 * Random-access archive reader. Construction parses and integrity-
 * checks the header, footer and trailer (O(#segments), not O(bytes));
 * segment payloads are CRC-checked and decoded only when a read needs
 * them. All failures surface as ArchiveError.
 */
class ArchiveReader
{
  public:
    static ArchiveReader fromBytes(std::vector<std::uint8_t> bytes,
                                   const ArchiveIoOptions &io = {});

    /**
     * Open @p path: mmap'ed zero-copy when io.mmapReads is set and
     * the platform cooperates, buffered otherwise. Both paths parse,
     * CRC-check, and fail identically.
     */
    static ArchiveReader fromFile(const std::string &path,
                                  const ArchiveIoOptions &io = {});

    // Out of line: the codec pool member is only forward-declared
    // here, so the special members must live where it is complete.
    ArchiveReader(ArchiveReader &&) noexcept;
    ArchiveReader &operator=(ArchiveReader &&) noexcept;
    ~ArchiveReader();

    /** True when this reader decodes straight out of an mmap. */
    bool usingMmap() const { return map_.mapped(); }

    /** True if @p bytes starts with the archive magic. */
    static bool looksLikeArchive(const std::uint8_t *bytes,
                                 std::size_t size);

    /** Convenience: magic sniff on a file's first 8 bytes. */
    static bool fileLooksLikeArchive(const std::string &path);

    const std::vector<ArchiveSegmentInfo> &segments() const
    {
        return segments_;
    }

    /** Number of seekable checkpoints (segments minus the tail). */
    std::size_t checkpointCount() const;

    /** GCCs of the seekable checkpoints, ascending. */
    std::vector<std::uint64_t> checkpointGccs() const;

    /** Boundary checkpoint @p index (0-based, ascending GCC). */
    const SystemCheckpoint &checkpointAt(std::size_t index) const;

    const MachineConfig &machine() const { return machine_; }
    const ModeConfig &mode() const { return mode_; }
    const std::string &appName() const { return app_name_; }
    std::uint64_t workloadSeed() const { return workload_seed_; }
    unsigned iterationsPercent() const { return iterations_percent_; }

    /**
     * Reassemble the complete Recording. Byte-identical to the
     * archived one: saveRecording(readAll()) equals saveRecording()
     * of the original. Decodes (and CRC-checks) every segment.
     */
    Recording readAll() const;

    /**
     * Interval view for replaying I(ckpt[from].gcc, end) — or, when
     * @p to != kToEnd, the bounded I(ckpt[from].gcc, ckpt[to].gcc).
     * Only the segments covering the interval are decoded; the log
     * prefix before the start checkpoint is replaced by synthetic
     * filler the replay skip logic consumes without ever touching
     * real data. The returned Recording carries the start checkpoint
     * at checkpoints[0] (hand it to Replayer::replayInterval with
     * checkpoint_index 0) and, when bounded, the stop checkpoint at
     * checkpoints[1] (pass &rec.checkpoints[1] as the stop).
     */
    static constexpr std::size_t kToEnd = static_cast<std::size_t>(-1);
    Recording readInterval(std::size_t from,
                           std::size_t to = kToEnd) const;

  private:
    ArchiveReader() = default;

    void parse();
    /// Decode + verify one segment payload; returns raw bytes.
    std::vector<std::uint8_t> segmentPayload(std::size_t index) const;
    /// The pool backing parallel segment decode (lazily built).
    WorkerPool &ioPool() const;

    /// Container bytes: owned_ (fromBytes / buffered fromFile) or
    /// map_ (zero-copy fromFile); data_/size_ view whichever is live.
    std::vector<std::uint8_t> owned_;
    MappedFile map_;
    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    ArchiveIoOptions io_;
    /// Lazily constructed; reused across readAll/readInterval calls
    /// on one reader. Readers are not internally synchronized — use
    /// one reader per thread, like any const-method-only class with
    /// lazy state.
    mutable std::unique_ptr<WorkerPool> pool_;
    MachineConfig machine_;
    ModeConfig mode_;
    std::string app_name_;
    std::uint64_t workload_seed_ = 0;
    unsigned iterations_percent_ = 100;
    std::uint64_t stats_[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::vector<std::uint64_t> per_proc_acc_;
    std::vector<std::uint64_t> per_proc_retired_;
    std::uint64_t final_mem_hash_ = 0;
    std::vector<ArchiveSegmentInfo> segments_;
};

} // namespace delorean

#endif // DELOREAN_STORE_ARCHIVE_HPP_
