/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial, reflected) used by the archive
 * container to detect payload corruption. Every segment and the
 * footer carry the CRC of their *compressed* bytes, so a bit flip is
 * caught before the LZ77 decoder or the deserializer ever see it.
 */

#ifndef DELOREAN_STORE_CRC32_HPP_
#define DELOREAN_STORE_CRC32_HPP_

#include <array>
#include <cstddef>
#include <cstdint>

namespace delorean
{

namespace crc32_detail
{

constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> kTable = makeTable();

} // namespace crc32_detail

/** CRC-32 of @p size bytes at @p data. */
inline std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = crc32_detail::kTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace delorean

#endif // DELOREAN_STORE_CRC32_HPP_
