/**
 * @file
 * Shared internals of the archive containers (library-private).
 *
 * The batch `.dla` writer/reader (store/archive) and the ring
 * container (store/ring) serialize exactly the same per-segment log
 * slices: both cut a recording at checkpoint boundaries and store the
 * slice between two consecutive boundaries as one LZ77-compressed
 * payload. This header exposes the slice machinery — boundary math,
 * payload build/parse, the interval-reconstruction scaffold — so the
 * two containers stay byte-compatible by construction: a ring
 * segment's payload for a given checkpoint interval is identical to
 * the batch archive's, and an interval Recording reconstructed from
 * either container is byte-identical under saveRecording().
 *
 * Everything here is an implementation detail: not installed, not
 * part of the public API, subject to change with the container
 * formats.
 */

#ifndef DELOREAN_STORE_ARCHIVE_DETAIL_HPP_
#define DELOREAN_STORE_ARCHIVE_DETAIL_HPP_

#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/recording.hpp"
#include "sim/campaign.hpp"

namespace delorean
{
namespace archive_detail
{

/**
 * Per-segment boundary state: where every log cursor stands at the
 * end of a segment's GCC interval. Consecutive boundaries define the
 * half-open slice ranges a segment's payload holds.
 */
struct Boundary
{
    std::uint64_t gcc = 0;        ///< PI entries consumed (flat modes)
    std::uint64_t chunkCommits = 0; ///< fingerprint commits consumed
    std::size_t strataIdx = 0;
    std::size_t dmaIdx = 0;
    std::vector<ChunkSeq> committed;  ///< per-proc chunk seq frontier
    std::vector<std::uint64_t> ioIdx; ///< per-proc I/O value frontier
};

/**
 * Boundary at @p ckpt; @p segment only labels alignment errors.
 * Throws RecordingFormatError when the checkpoint does not land on a
 * stratum boundary of a stratified recording.
 */
Boundary boundaryAtCheckpoint(const Recording &rec,
                              const SystemCheckpoint &ckpt,
                              std::size_t segment);

/** Boundary at the end of the (complete) recording. */
Boundary boundaryAtEnd(const Recording &rec);

/** Serialize the log slices between boundaries @p lo and @p hi. */
std::string buildSegmentPayload(const Recording &rec, const Boundary &lo,
                                const Boundary &hi);

/** Decoded counterpart of buildSegmentPayload. */
struct SegmentSlice
{
    std::vector<ProcId> pi;
    bool piHasMasks = false;
    std::vector<std::uint64_t> piMasks;
    std::vector<Stratum> strata;
    std::vector<std::vector<CsEntry>> cs;
    std::vector<std::vector<InterruptRecord>> interrupts;
    std::vector<std::vector<std::uint64_t>> io;
    std::vector<std::pair<DmaTransfer, std::uint64_t>> dma;
    std::vector<CommitRecord> commits;
};

/** Parse a raw (decompressed) payload for @p n processors. */
SegmentSlice parseSegmentPayload(const std::vector<std::uint8_t> &raw,
                                 unsigned n);

/**
 * Decode + parse one segment, attributing parse errors to it as a
 * typed ArchiveError naming segment @p index.
 */
SegmentSlice decodeSegment(const std::vector<std::uint8_t> &raw,
                           unsigned num_procs, std::size_t index);

/** LZ77-compress one payload (or footer) blob. */
std::vector<std::uint8_t> compressPayload(const std::string &raw);

/** Little-endian u64 at @p offset (caller guarantees bounds). */
std::uint64_t readU64At(const std::uint8_t *bytes, std::size_t offset);

/**
 * Run @p tasks over a pool, collecting each task's exception (if any)
 * by index; the caller decides rethrow order. Task results land in
 * caller-owned index-keyed slots, so outcomes are independent of the
 * worker count — the parallel-codec analogue of the campaign runner's
 * determinism rule.
 */
void runIndexed(WorkerPool &pool,
                std::vector<std::function<void()>> tasks,
                std::vector<std::exception_ptr> &errors);

/** Shared recording scaffold for whole-container and interval reads. */
Recording skeletonRecording(const MachineConfig &machine,
                            const ModeConfig &mode,
                            const std::string &app, std::uint64_t seed,
                            unsigned iterations);

/**
 * Append one decoded segment slice onto @p rec's logs.
 *
 * @param use_masks keep the slice's shard masks (whole-container
 *        reads). Interval reads pass false: their synthetic PI prefix
 *        is maskless, so the reconstructed interval degrades to a
 *        total-order PI log — interval replay is always total-order
 *        anyway.
 */
void appendSlice(Recording &rec, const SegmentSlice &slice,
                 std::vector<std::uint64_t> &io_base,
                 std::size_t segment, bool use_masks);

/**
 * Append the synthetic pre-interval prefix implied by @p start onto a
 * fresh skeleton: filler PI entries / capped strata, empty DMA
 * transfers and zeroed fingerprint commits sized so the replay skip
 * logic consumes exactly the recording prefix the interval omits.
 */
void appendSyntheticPrefix(Recording &rec,
                           const SystemCheckpoint &start);

} // namespace archive_detail
} // namespace delorean

#endif // DELOREAN_STORE_ARCHIVE_DETAIL_HPP_
