#include "store/ring.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <exception>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/errors.hpp"
#include "compress/lz77.hpp"
#include "core/serialize.hpp"
#include "core/serialize_detail.hpp"
#include "sim/campaign.hpp"
#include "store/archive_detail.hpp"
#include "store/crc32.hpp"

namespace delorean
{

using serialize_detail::getCheckpoint;
using serialize_detail::getMachine;
using serialize_detail::getMode;
using serialize_detail::getString;
using serialize_detail::getU64;
using serialize_detail::putCheckpoint;
using serialize_detail::putMachine;
using serialize_detail::putMode;
using serialize_detail::putString;
using serialize_detail::putU64;

using namespace archive_detail;

namespace
{

constexpr std::uint64_t kRingMetaMagic = 0x2E676E526F4C6544ull; // "DeLoRng."
constexpr std::uint64_t kRingSegMagic = 0x676553526F4C6544ull;  // "DeLoRSeg"
constexpr std::uint64_t kRingIdxMagic = 0x786449526F4C6544ull;  // "DeLoRIdx"
constexpr std::uint64_t kRingVersion = 1;
/// Fixed meta/index preamble: magic, version, reserved, blob size,
/// blob CRC-32.
constexpr std::size_t kPreambleBytes = 40;
/// Segment preamble: magic, version, segId, header raw size, header
/// compressed size, header CRC-32 (of the compressed bytes). The
/// header blob is followed by the start- and end-checkpoint blobs it
/// describes (each independently LZ77-compressed and CRC'd), then the
/// payload. Keeping the checkpoint images out of the header lets the
/// writer compress each checkpoint exactly once: the blob that closes
/// segment i is byte-reused as the start blob of segment i+1.
constexpr std::size_t kSegPreambleBytes = 48;
/// Header/meta/index blob size cap: fences OOM on garbage files.
constexpr std::uint64_t kMaxBlobBytes = 1ull << 30;
/// Sanity fence on index entry counts (mirrors the .dla segment cap).
constexpr std::uint64_t kMaxSegmentsPerRing = 1ull << 20;

std::string
segFileName(std::uint64_t id)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "seg-%012llu",
                  static_cast<unsigned long long>(id));
    return buf;
}

/** Write preamble + blob to @p path via temp + atomic rename. */
void
writeBlobFileAtomic(const std::string &path, std::uint64_t magic,
                    std::uint64_t seg_id, const std::string &blob)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        putU64(out, magic);
        putU64(out, kRingVersion);
        putU64(out, seg_id);
        putU64(out, blob.size());
        putU64(out, crc32(reinterpret_cast<const std::uint8_t *>(
                              blob.data()),
                          blob.size()));
        out.write(blob.data(),
                  static_cast<std::streamsize>(blob.size()));
        if (!out)
            throw std::runtime_error("failed to write " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw std::runtime_error("failed to rename " + tmp + " to "
                                 + path);
}

/** Read a whole file; empty optional-style flag via @p ok. */
std::vector<std::uint8_t>
readWholeFile(const std::string &path, bool &ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ok = false;
        return {};
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    ok = static_cast<bool>(in) || in.eof();
    return bytes;
}

} // namespace

// ----- options --------------------------------------------------------------

std::uint64_t
RingOptions::resolvedLag() const
{
    return maxReplayLag ? maxReplayLag : 2 * checkpointPeriod;
}

void
RingOptions::validate() const
{
    if (checkpointPeriod == 0)
        throw ConfigError("ring checkpointPeriod must be positive");
    if (budgetBytes == 0)
        throw ConfigError("ring budgetBytes must be positive");
    if (checkpointPeriod > (1ull << 62))
        throw ConfigError("ring checkpointPeriod is implausibly large");
    if (resolvedLag() < 2 * checkpointPeriod)
        throw ConfigError(
            "ring maxReplayLag T=" + std::to_string(resolvedLag())
            + " is infeasible: with checkpoints every P="
            + std::to_string(checkpointPeriod)
            + " commits the newest durable replay starting point can "
              "lag the frontier by up to 2P-1 commits; require "
              "T >= 2P = "
            + std::to_string(2 * checkpointPeriod));
}

// ----- writer ---------------------------------------------------------------

/**
 * Same two-thread pipeline as StreamingArchiveWriter::Impl: the
 * feeder cuts payloads synchronously and stages them; the flusher
 * compresses a snatched batch over the codec pool, writes one file
 * per segment, evicts over-budget history and atomically rewrites
 * the index. Handoff is by join (flush_done + join before touching
 * flusher-owned state); the mutex only guards the live-set/stats
 * snapshot that stats() may read concurrently.
 */
struct RingArchiveWriter::Impl
{
    std::string dir;
    RingOptions opts;

    bool initialized = false;
    bool is_closed = false;
    unsigned n = 0;

    Boundary last;              ///< frontier at the last cut
    std::uint64_t last_gcc = 0; ///< last checkpoint GCC
    std::size_t fed = 0;        ///< checkpoints consumed
    std::uint64_t next_seg = 0; ///< next segment id to cut

    /// A cut segment between payload build and file commit. The start
    /// checkpoint is not carried: it is by construction the previous
    /// segment's end checkpoint, whose compressed blob the flusher
    /// caches and reuses.
    struct Pending
    {
        std::uint64_t segId = 0;
        std::uint64_t startGcc = 0;
        std::uint64_t endGcc = 0;
        bool isTail = false;
        bool hasStart = false;
        bool hasEnd = false;
        SystemCheckpoint end;
        std::string raw;
    };
    /// One compressed checkpoint image (flusher-owned cache of the
    /// newest end checkpoint, reused as the next start blob).
    struct CkptBlob
    {
        std::uint64_t raw = 0;
        std::uint64_t crc = 0;
        std::vector<std::uint8_t> comp;
    };
    CkptBlob prev_end; ///< flusher-owned carry across batches
    std::vector<Pending> staging;  ///< feeder-owned accumulation
    std::vector<Pending> flushing; ///< flusher-owned batch
    std::thread flusher;
    std::atomic<bool> flush_done{true};
    std::exception_ptr flush_error;
    std::unique_ptr<WorkerPool> pool;

    /// Retained on-disk segments, oldest first (flusher-owned; the
    /// mutex makes the snapshot readable from stats()).
    struct LiveSeg
    {
        std::uint64_t segId = 0;
        std::uint64_t fileBytes = 0;
    };
    mutable std::mutex mu;
    std::deque<LiveSeg> live;
    RingWriterStats statsd;
    std::uint64_t newest_start_gcc = 0; ///< of newest durable segment
    bool have_durable = false;

    Impl(std::string d, const RingOptions &o)
        : dir(std::move(d)), opts(o)
    {
    }

    ~Impl()
    {
        if (flusher.joinable())
            flusher.join();
    }

    void
    ensureInit(const Recording &rec)
    {
        if (initialized)
            return;
        n = rec.machine.numProcs;
        last = Boundary{};
        last.committed.assign(n, 0);
        last.ioIdx.assign(n, 0);
        namespace fs = std::filesystem;
        fs::create_directories(dir);
        // A ring directory belongs to one run: clear leftovers so a
        // reader never stitches two runs together.
        for (const auto &entry : fs::directory_iterator(dir)) {
            const std::string name = entry.path().filename().string();
            if (name == "ring.meta" || name == "ring.index"
                || name.rfind("seg-", 0) == 0
                || name.rfind("ring.", 0) == 0)
                fs::remove(entry.path());
        }
        std::ostringstream blob(std::ios::binary);
        putMachine(blob, rec.machine);
        putMode(blob, rec.mode);
        putString(blob, rec.appName);
        putU64(blob, rec.workloadSeed);
        putU64(blob, rec.iterationsPercent);
        putU64(blob, opts.budgetBytes);
        putU64(blob, opts.checkpointPeriod);
        putU64(blob, opts.resolvedLag());
        writeBlobFileAtomic(dir + "/ring.meta", kRingMetaMagic, 0,
                            std::move(blob).str());
        initialized = true;
    }

    void
    rethrowFlushError()
    {
        if (flush_error) {
            is_closed = true; // poisoned: the ring is mid-commit
            std::exception_ptr e = flush_error;
            flush_error = nullptr;
            std::rethrow_exception(e);
        }
    }

    /**
     * Serialize one segment's self-describing header blob: the GCC
     * interval plus the sizes and CRCs of the checkpoint blobs and
     * payload that follow it in the file.
     */
    static std::string
    segmentHeaderBlob(const Pending &p, const CkptBlob &start,
                      const CkptBlob &end, std::uint64_t comp_bytes,
                      std::uint64_t payload_crc)
    {
        std::ostringstream blob(std::ios::binary);
        putU64(blob, p.startGcc);
        putU64(blob, p.endGcc);
        putU64(blob, p.isTail ? 1 : 0);
        putU64(blob, p.hasStart ? 1 : 0);
        if (p.hasStart) {
            putU64(blob, start.raw);
            putU64(blob, start.comp.size());
            putU64(blob, start.crc);
        }
        putU64(blob, p.hasEnd ? 1 : 0);
        if (p.hasEnd) {
            putU64(blob, end.raw);
            putU64(blob, end.comp.size());
            putU64(blob, end.crc);
        }
        putU64(blob, p.raw.size());
        putU64(blob, comp_bytes);
        putU64(blob, payload_crc);
        return std::move(blob).str();
    }

    /**
     * Rewrite ring.index (temp + rename). @p rec supplies the final
     * stats for the clean index written at close; nullptr writes a
     * progress snapshot.
     */
    void
    writeIndex(const Recording *rec)
    {
        std::ostringstream blob(std::ios::binary);
        putU64(blob, rec ? 1 : 0);
        {
            std::lock_guard<std::mutex> lock(mu);
            putU64(blob, live.size());
            for (const LiveSeg &seg : live) {
                putU64(blob, seg.segId);
                putU64(blob, seg.fileBytes);
            }
        }
        if (rec) {
            putU64(blob, rec->stats.totalCycles);
            putU64(blob, rec->stats.retiredInstrs);
            putU64(blob, rec->stats.executedInstrs);
            putU64(blob, rec->stats.committedChunks);
            putU64(blob, rec->stats.squashes);
            putU64(blob, rec->stats.overflowTruncations);
            putU64(blob, rec->stats.collisionTruncations);
            putU64(blob, rec->stats.hardTruncations);
            putU64(blob, rec->fingerprint.perProcAcc.size());
            for (std::size_t p = 0;
                 p < rec->fingerprint.perProcAcc.size(); ++p) {
                putU64(blob, rec->fingerprint.perProcAcc[p]);
                putU64(blob, rec->fingerprint.perProcRetired[p]);
            }
            putU64(blob, rec->fingerprint.finalMemHash);
        }
        writeBlobFileAtomic(dir + "/ring.index", kRingIdxMagic, 0,
                            std::move(blob).str());
    }

    /**
     * Compress the batch over the codec pool, commit one file per
     * segment in id order, evict over-budget history and rewrite the
     * index. Runs on the flusher thread (or inline from drain()).
     */
    void
    flushBatch()
    {
        const std::size_t count = flushing.size();
        std::vector<std::vector<std::uint8_t>> comp(count);
        std::vector<std::string> end_raw(count);
        std::vector<CkptBlob> end_blob(count);
        for (std::size_t i = 0; i < count; ++i)
            if (flushing[i].hasEnd) {
                std::ostringstream b(std::ios::binary);
                putCheckpoint(b, flushing[i].end);
                end_raw[i] = std::move(b).str();
            }
        if (!pool)
            pool = std::make_unique<WorkerPool>(
                opts.io.resolvedIoThreads());
        std::vector<std::function<void()>> tasks;
        tasks.reserve(2 * count);
        for (std::size_t i = 0; i < count; ++i) {
            tasks.push_back([this, &comp, i] {
                comp[i] = compressPayload(flushing[i].raw);
            });
            // Each checkpoint image is compressed exactly once, here:
            // the blob closing segment i doubles as the start blob of
            // segment i+1 (prev_end carries it across batches).
            if (flushing[i].hasEnd)
                tasks.push_back([&end_raw, &end_blob, i] {
                    end_blob[i].raw = end_raw[i].size();
                    end_blob[i].comp = compressPayload(end_raw[i]);
                    end_blob[i].crc = crc32(end_blob[i].comp.data(),
                                            end_blob[i].comp.size());
                });
        }
        std::vector<std::exception_ptr> errors;
        runIndexed(*pool, std::move(tasks), errors);
        for (const std::exception_ptr &e : errors)
            if (e)
                std::rethrow_exception(e);

        for (std::size_t i = 0; i < count; ++i) {
            Pending &p = flushing[i];
            const std::uint64_t payload_crc =
                crc32(comp[i].data(), comp[i].size());
            CkptBlob start;
            if (p.hasStart) {
                if (prev_end.comp.empty())
                    throw std::logic_error(
                        "ring segment cut out of order: no cached "
                        "start checkpoint");
                start = std::move(prev_end);
            }
            const std::string blob = segmentHeaderBlob(
                p, start, end_blob[i], comp[i].size(), payload_crc);
            const std::vector<std::uint8_t> hcomp =
                compressPayload(blob);
            const std::string path = dir + "/" + segFileName(p.segId);
            {
                // Written in place, not via rename: only the newest
                // file can ever be torn, which is exactly the crash
                // shape the reader's salvage path handles.
                std::ofstream out(path,
                                  std::ios::binary | std::ios::trunc);
                putU64(out, kRingSegMagic);
                putU64(out, kRingVersion);
                putU64(out, p.segId);
                putU64(out, blob.size());
                putU64(out, hcomp.size());
                putU64(out, crc32(hcomp.data(), hcomp.size()));
                out.write(
                    reinterpret_cast<const char *>(hcomp.data()),
                    static_cast<std::streamsize>(hcomp.size()));
                out.write(
                    reinterpret_cast<const char *>(start.comp.data()),
                    static_cast<std::streamsize>(start.comp.size()));
                out.write(reinterpret_cast<const char *>(
                              end_blob[i].comp.data()),
                          static_cast<std::streamsize>(
                              end_blob[i].comp.size()));
                out.write(
                    reinterpret_cast<const char *>(comp[i].data()),
                    static_cast<std::streamsize>(comp[i].size()));
                if (!out)
                    throw std::runtime_error("failed to write " + path);
            }
            const std::uint64_t file_bytes =
                kSegPreambleBytes + hcomp.size() + start.comp.size()
                + end_blob[i].comp.size() + comp[i].size();
            if (p.hasEnd)
                prev_end = std::move(end_blob[i]);

            std::vector<std::uint64_t> evict_ids;
            {
                std::lock_guard<std::mutex> lock(mu);
                // Lag bookkeeping: while this segment recorded, the
                // newest durable start was the previous segment's.
                const std::uint64_t lag =
                    p.endGcc
                    - (have_durable ? newest_start_gcc : 0);
                statsd.worstStartLag =
                    std::max(statsd.worstStartLag, lag);
                statsd.maxCheckpointSpacing =
                    std::max(statsd.maxCheckpointSpacing,
                             p.endGcc - p.startGcc);
                have_durable = true;
                newest_start_gcc = p.startGcc;

                live.push_back({p.segId, file_bytes});
                ++statsd.segmentsCut;
                statsd.bytesWritten += file_bytes;
                statsd.liveBytes += file_bytes;
                while (statsd.liveBytes > opts.budgetBytes
                       && live.size() > 1) {
                    const LiveSeg victim = live.front();
                    live.pop_front();
                    statsd.liveBytes -= victim.fileBytes;
                    ++statsd.segmentsEvicted;
                    evict_ids.push_back(victim.segId);
                }
                if (statsd.liveBytes > opts.budgetBytes)
                    ++statsd.budgetOverruns;
            }
            for (const std::uint64_t id : evict_ids)
                std::remove((dir + "/" + segFileName(id)).c_str());

            std::vector<std::uint8_t>().swap(comp[i]);
            std::string().swap(p.raw);
        }
        flushing.clear();
        writeIndex(nullptr);
    }

    void
    pump()
    {
        if (!flush_done.load(std::memory_order_acquire))
            return; // flusher busy; keep accumulating
        if (flusher.joinable())
            flusher.join();
        rethrowFlushError();
        if (staging.empty())
            return;
        flushing = std::move(staging);
        staging.clear();
        flush_done.store(false, std::memory_order_release);
        flusher = std::thread([this] {
            try {
                flushBatch();
            } catch (...) {
                flush_error = std::current_exception();
            }
            flush_done.store(true, std::memory_order_release);
        });
    }

    void
    drain()
    {
        if (flusher.joinable())
            flusher.join();
        rethrowFlushError();
        if (!staging.empty()) {
            flushing = std::move(staging);
            staging.clear();
            flushBatch();
        }
    }

    /** Cut the segment (last, hi]; null @p end_ckpt cuts the tail. */
    void
    stage(const Recording &rec, const Boundary &hi,
          const SystemCheckpoint *end_ckpt)
    {
        Pending p;
        p.segId = next_seg;
        p.startGcc = last.gcc;
        p.endGcc = hi.gcc;
        p.isTail = end_ckpt == nullptr;
        p.hasStart = next_seg > 0;
        if (end_ckpt) {
            p.hasEnd = true;
            p.end = *end_ckpt;
        }
        p.raw = buildSegmentPayload(rec, last, hi);
        staging.push_back(std::move(p));
        last = hi;
        ++next_seg;
    }

    /** Consume every not-yet-streamed checkpoint of @p rec. */
    void
    feed(const Recording &rec)
    {
        ensureInit(rec);
        while (fed < rec.checkpoints.size()) {
            const SystemCheckpoint &ckpt = rec.checkpoints[fed];
            if (fed > 0 && ckpt.gcc <= last_gcc)
                throw RecordingFormatError(
                    "checkpoints are not in ascending GCC order");
            Boundary hi = boundaryAtCheckpoint(rec, ckpt, fed);
            stage(rec, hi, &ckpt);
            last_gcc = ckpt.gcc;
            ++fed;
        }
    }
};

RingArchiveWriter::RingArchiveWriter(const std::string &dir,
                                     const RingOptions &opts)
    : impl_(std::make_unique<Impl>(dir, opts))
{
    opts.validate();
}

RingArchiveWriter::~RingArchiveWriter() = default;

void
RingArchiveWriter::onCheckpoint(const Recording &rec)
{
    if (impl_->is_closed)
        throw std::logic_error("RingArchiveWriter used after close");
    impl_->feed(rec);
    impl_->pump();
}

void
RingArchiveWriter::close(const Recording &rec)
{
    Impl &im = *impl_;
    if (im.is_closed)
        throw std::logic_error("RingArchiveWriter::close called twice");
    im.feed(rec);
    im.stage(rec, boundaryAtEnd(rec), nullptr); // tail segment
    im.drain();
    im.writeIndex(&rec);
    im.is_closed = true;
}

bool
RingArchiveWriter::closed() const
{
    return impl_->is_closed;
}

const std::string &
RingArchiveWriter::directory() const
{
    return impl_->dir;
}

RingWriterStats
RingArchiveWriter::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->statsd;
}

RingWriterStats
writeRing(const Recording &rec, const std::string &dir,
          const RingOptions &opts)
{
    RingArchiveWriter writer(dir, opts);
    writer.onCheckpoint(rec);
    writer.close(rec);
    return writer.stats();
}

// ----- reader ---------------------------------------------------------------

namespace
{

/** One scanned segment file before the contiguity walk. */
struct ScannedSegment
{
    RingSegmentInfo info;
    std::string path;
    std::uint64_t payloadOff = 0;
};

/**
 * Parse one candidate segment file. Returns false with @p reason set
 * when the file is structurally invalid (torn, corrupt, or lying
 * about itself) — the salvage path drops it.
 */
bool
scanSegmentFile(const std::string &path, unsigned n,
                ScannedSegment &out, std::string &reason)
{
    bool ok = true;
    const std::vector<std::uint8_t> bytes = readWholeFile(path, ok);
    if (!ok) {
        reason = "unreadable";
        return false;
    }
    if (bytes.size() < kSegPreambleBytes) {
        reason = "shorter than a segment preamble";
        return false;
    }
    if (readU64At(bytes.data(), 0) != kRingSegMagic) {
        reason = "segment magic missing";
        return false;
    }
    if (readU64At(bytes.data(), 8) != kRingVersion) {
        reason = "unsupported segment version";
        return false;
    }
    const std::uint64_t seg_id = readU64At(bytes.data(), 16);
    const std::uint64_t blob_raw = readU64At(bytes.data(), 24);
    const std::uint64_t blob_comp = readU64At(bytes.data(), 32);
    const std::uint64_t blob_crc = readU64At(bytes.data(), 40);
    if (blob_raw > kMaxBlobBytes || blob_comp > kMaxBlobBytes
        || kSegPreambleBytes + blob_comp > bytes.size()) {
        reason = "torn header";
        return false;
    }
    if (crc32(bytes.data() + kSegPreambleBytes,
              static_cast<std::size_t>(blob_comp))
        != blob_crc) {
        reason = "header CRC mismatch";
        return false;
    }

    RingSegmentInfo info;
    info.segId = seg_id;
    std::uint64_t start_raw = 0, start_comp = 0, start_crc = 0;
    std::uint64_t end_raw = 0, end_comp = 0, end_crc = 0;
    try {
        const Lz77 codec;
        const std::vector<std::uint8_t> blob = codec.decompress(
            bytes.data() + kSegPreambleBytes,
            static_cast<std::size_t>(blob_comp));
        if (blob.size() != blob_raw) {
            reason = "header decompressed size mismatch";
            return false;
        }
        std::istringstream in(
            std::string(reinterpret_cast<const char *>(blob.data()),
                        blob.size()),
            std::ios::binary);
        info.startGcc = getU64(in);
        info.endGcc = getU64(in);
        info.isTail = getU64(in) != 0;
        info.hasStartCheckpoint = getU64(in) != 0;
        if (info.hasStartCheckpoint) {
            start_raw = getU64(in);
            start_comp = getU64(in);
            start_crc = getU64(in);
        }
        info.hasEndCheckpoint = getU64(in) != 0;
        if (info.hasEndCheckpoint) {
            end_raw = getU64(in);
            end_comp = getU64(in);
            end_crc = getU64(in);
        }
        info.rawBytes = getU64(in);
        info.compBytes = getU64(in);
        info.crc32 = getU64(in);
    } catch (const RecordingFormatError &) {
        reason = "malformed header";
        return false;
    }

    // Everything the header promises must fit the file exactly:
    // header, start blob, end blob, payload, nothing else.
    if (start_raw > kMaxBlobBytes || start_comp > kMaxBlobBytes
        || end_raw > kMaxBlobBytes || end_comp > kMaxBlobBytes) {
        reason = "implausible checkpoint blob size";
        return false;
    }
    std::uint64_t off = kSegPreambleBytes + blob_comp;
    if (off + start_comp + end_comp + info.compBytes
        != bytes.size()) {
        reason = "file size disagrees with the header (torn payload?)";
        return false;
    }
    const auto loadCheckpoint =
        [&bytes](std::uint64_t at, std::uint64_t comp_n,
                 std::uint64_t raw_n, std::uint64_t crc_want,
                 SystemCheckpoint &out_ckpt, std::string &why) {
            if (crc32(bytes.data() + at,
                      static_cast<std::size_t>(comp_n))
                != crc_want) {
                why = "checkpoint blob CRC mismatch";
                return false;
            }
            try {
                const Lz77 codec;
                const std::vector<std::uint8_t> blob =
                    codec.decompress(
                        bytes.data() + at,
                        static_cast<std::size_t>(comp_n));
                if (blob.size() != raw_n) {
                    why = "checkpoint blob size mismatch";
                    return false;
                }
                std::istringstream in(
                    std::string(
                        reinterpret_cast<const char *>(blob.data()),
                        blob.size()),
                    std::ios::binary);
                out_ckpt = getCheckpoint(in);
            } catch (const RecordingFormatError &) {
                why = "malformed checkpoint blob";
                return false;
            }
            return true;
        };
    if (info.hasStartCheckpoint) {
        if (!loadCheckpoint(off, start_comp, start_raw, start_crc,
                            info.startCheckpoint, reason))
            return false;
        off += start_comp;
    }
    if (info.hasEndCheckpoint) {
        if (!loadCheckpoint(off, end_comp, end_raw, end_crc,
                            info.endCheckpoint, reason))
            return false;
        off += end_comp;
    }

    if (info.endGcc < info.startGcc
        || (!info.isTail && info.endGcc <= info.startGcc)) {
        reason = "GCC interval not ascending";
        return false;
    }
    if (info.hasStartCheckpoint != (seg_id > 0)) {
        reason = "start-checkpoint presence disagrees with the id";
        return false;
    }
    if (info.hasEndCheckpoint == info.isTail) {
        reason = "end-checkpoint presence disagrees with the tail flag";
        return false;
    }
    if (info.hasStartCheckpoint
        && (info.startCheckpoint.gcc != info.startGcc
            || info.startCheckpoint.contexts.size() != n
            || info.startCheckpoint.committedChunks.size() != n)) {
        reason = "start checkpoint disagrees with the header";
        return false;
    }
    if (info.hasEndCheckpoint
        && (info.endCheckpoint.gcc != info.endGcc
            || info.endCheckpoint.contexts.size() != n
            || info.endCheckpoint.committedChunks.size() != n)) {
        reason = "end checkpoint disagrees with the header";
        return false;
    }
    info.fileBytes = bytes.size();
    out.info = std::move(info);
    out.path = path;
    out.payloadOff = off;
    return true;
}

} // namespace

RingArchiveReader::RingArchiveReader() = default;
RingArchiveReader::RingArchiveReader(RingArchiveReader &&) noexcept =
    default;
RingArchiveReader &
RingArchiveReader::operator=(RingArchiveReader &&) noexcept = default;
RingArchiveReader::~RingArchiveReader() = default;

bool
RingArchiveReader::looksLikeRing(const std::string &dir)
{
    std::ifstream in(dir + "/ring.meta", std::ios::binary);
    std::uint8_t head[8];
    in.read(reinterpret_cast<char *>(head), 8);
    return in && readU64At(head, 0) == kRingMetaMagic;
}

RingArchiveReader
RingArchiveReader::open(const std::string &dir,
                        const ArchiveIoOptions &io)
{
    RingArchiveReader r;
    r.dir_ = dir;
    r.io_ = io;

    // ----- ring.meta ------------------------------------------------
    bool ok = true;
    const std::vector<std::uint8_t> meta =
        readWholeFile(dir + "/ring.meta", ok);
    if (!ok)
        throw ArchiveError(ArchiveSection::kFileHeader,
                           ArchiveError::kNoSegment,
                           "cannot read " + dir
                               + "/ring.meta (not a ring archive?)");
    if (meta.size() < kPreambleBytes
        || readU64At(meta.data(), 0) != kRingMetaMagic)
        throw ArchiveError(ArchiveSection::kFileHeader,
                           ArchiveError::kNoSegment,
                           "not a DeLorean ring archive");
    if (readU64At(meta.data(), 8) != kRingVersion)
        throw ArchiveError(ArchiveSection::kFileHeader,
                           ArchiveError::kNoSegment,
                           "unsupported ring version "
                               + std::to_string(
                                   readU64At(meta.data(), 8)));
    const std::uint64_t meta_blob = readU64At(meta.data(), 24);
    if (meta_blob > kMaxBlobBytes
        || kPreambleBytes + meta_blob != meta.size())
        throw ArchiveError(ArchiveSection::kFileHeader,
                           ArchiveError::kNoSegment,
                           "ring.meta truncated");
    if (crc32(meta.data() + kPreambleBytes,
              static_cast<std::size_t>(meta_blob))
        != readU64At(meta.data(), 32))
        throw ArchiveError(ArchiveSection::kFileHeader,
                           ArchiveError::kNoSegment,
                           "ring.meta CRC mismatch");
    try {
        std::istringstream in(
            std::string(reinterpret_cast<const char *>(meta.data())
                            + kPreambleBytes,
                        static_cast<std::size_t>(meta_blob)),
            std::ios::binary);
        r.machine_ = getMachine(in);
        r.mode_ = getMode(in);
        validateRecordingConfigs(r.machine_, r.mode_);
        r.app_name_ = getString(in);
        r.workload_seed_ = getU64(in);
        r.iterations_percent_ = static_cast<unsigned>(getU64(in));
        r.opts_.budgetBytes = getU64(in);
        r.opts_.checkpointPeriod = getU64(in);
        r.opts_.maxReplayLag = getU64(in);
        r.opts_.io = io;
    } catch (const ArchiveError &) {
        throw;
    } catch (const RecordingFormatError &e) {
        throw ArchiveError(ArchiveSection::kFileHeader,
                           ArchiveError::kNoSegment, e.what());
    }
    const unsigned n = r.machine_.numProcs;

    // ----- segment scan ---------------------------------------------
    namespace fs = std::filesystem;
    std::vector<std::string> names;
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("seg-", 0) == 0)
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());

    std::vector<ScannedSegment> found;
    for (const std::string &name : names) {
        ScannedSegment s;
        std::string reason;
        if (scanSegmentFile(dir + "/" + name, n, s, reason)) {
            found.push_back(std::move(s));
        } else {
            ++r.recovery_.droppedSegments;
            r.recovery_.notes.push_back(name + ": " + reason);
        }
    }
    std::stable_sort(found.begin(), found.end(),
                     [](const ScannedSegment &a,
                        const ScannedSegment &b) {
                         return a.info.segId < b.info.segId;
                     });
    // Duplicate ids (a copy planted next to the original): keep the
    // first by name order, drop the rest.
    for (std::size_t i = 1; i < found.size();) {
        if (found[i].info.segId == found[i - 1].info.segId) {
            ++r.recovery_.droppedSegments;
            r.recovery_.notes.push_back(
                found[i].path + ": duplicate segment id "
                + std::to_string(found[i].info.segId));
            found.erase(found.begin()
                        + static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
    if (found.empty())
        throw ArchiveError(ArchiveSection::kSegment,
                           ArchiveError::kNoSegment,
                           "ring holds no decodable segments");

    // Newest contiguous run: walk back from the newest valid segment
    // while ids are consecutive and GCC intervals chain.
    std::size_t first = found.size() - 1;
    while (first > 0) {
        const RingSegmentInfo &prev = found[first - 1].info;
        const RingSegmentInfo &cur = found[first].info;
        if (prev.segId + 1 != cur.segId
            || prev.endGcc != cur.startGcc || prev.isTail)
            break;
        --first;
    }
    if (first > 0) {
        r.recovery_.droppedSegments += first;
        r.recovery_.notes.push_back(
            std::to_string(first)
            + " older segment(s) unreachable behind a gap at segment "
            + std::to_string(found[first].info.segId));
    }
    for (std::size_t i = first; i < found.size(); ++i) {
        r.segments_.push_back(std::move(found[i].info));
        r.seg_paths_.push_back(std::move(found[i].path));
        r.payload_off_.push_back(found[i].payloadOff);
    }

    // ----- ring.index -----------------------------------------------
    bool idx_ok = true;
    const std::vector<std::uint8_t> idx =
        readWholeFile(dir + "/ring.index", idx_ok);
    bool idx_clean = false;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> idx_live;
    bool idx_valid = false;
    if (!idx_ok) {
        r.recovery_.notes.push_back(
            "ring.index missing; recovered by scan");
    } else if (idx.size() < kPreambleBytes
               || readU64At(idx.data(), 0) != kRingIdxMagic
               || readU64At(idx.data(), 8) != kRingVersion
               || readU64At(idx.data(), 24) > kMaxBlobBytes
               || kPreambleBytes + readU64At(idx.data(), 24)
                      != idx.size()
               || crc32(idx.data() + kPreambleBytes,
                        static_cast<std::size_t>(
                            readU64At(idx.data(), 24)))
                      != readU64At(idx.data(), 32)) {
        r.recovery_.notes.push_back(
            "ring.index corrupt; recovered by scan");
    } else {
        try {
            std::istringstream in(
                std::string(
                    reinterpret_cast<const char *>(idx.data())
                        + kPreambleBytes,
                    static_cast<std::size_t>(
                        readU64At(idx.data(), 24))),
                std::ios::binary);
            idx_clean = getU64(in) != 0;
            const std::uint64_t count = getU64(in);
            if (count > kMaxSegmentsPerRing)
                throw RecordingFormatError(
                    "implausible index segment count");
            for (std::uint64_t i = 0; i < count; ++i) {
                const std::uint64_t id = getU64(in);
                const std::uint64_t bytes = getU64(in);
                idx_live.emplace_back(id, bytes);
            }
            if (idx_clean) {
                for (int k = 0; k < 8; ++k)
                    r.stats_[k] = getU64(in);
                const std::uint64_t procs = getU64(in);
                if (procs != n)
                    throw RecordingFormatError(
                        "index fingerprint per-proc count does not "
                        "match numProcs");
                for (std::uint64_t p = 0; p < procs; ++p) {
                    r.per_proc_acc_.push_back(getU64(in));
                    r.per_proc_retired_.push_back(getU64(in));
                }
                r.final_mem_hash_ = getU64(in);
            }
            idx_valid = true;
        } catch (const RecordingFormatError &) {
            r.recovery_.notes.push_back(
                "ring.index malformed; recovered by scan");
            idx_valid = false;
        }
    }
    if (idx_valid) {
        // The scan is the truth; the index only certifies a clean
        // close (and its final stats) when it agrees exactly.
        bool agrees = idx_live.size() == r.segments_.size();
        for (std::size_t i = 0; agrees && i < idx_live.size(); ++i)
            agrees = idx_live[i].first == r.segments_[i].segId
                     && idx_live[i].second
                            == r.segments_[i].fileBytes;
        if (agrees) {
            r.recovery_.usedIndex = true;
            r.recovery_.clean =
                idx_clean && r.segments_.back().isTail;
        } else {
            r.recovery_.notes.push_back(
                "ring.index stale (disagrees with scan); recovered "
                "by scan");
        }
    }
    if (!r.recovery_.clean) {
        r.per_proc_acc_.assign(n, 0);
        r.per_proc_retired_.assign(n, 0);
        r.final_mem_hash_ = 0;
        for (int k = 0; k < 8; ++k)
            r.stats_[k] = 0;
    }

    // ----- checkpoint index over boundaries 0..m --------------------
    const std::size_t m = r.segments_.size();
    for (std::size_t b = 0; b <= m; ++b) {
        const bool has =
            b == 0 ? r.segments_[0].hasStartCheckpoint
                   : (b < m ? true
                            : r.segments_[m - 1].hasEndCheckpoint);
        if (has)
            r.ckpt_boundary_.push_back(b);
    }
    return r;
}

const SystemCheckpoint &
RingArchiveReader::boundaryCheckpoint(std::size_t b) const
{
    return b < segments_.size()
               ? segments_[b].startCheckpoint
               : segments_.back().endCheckpoint;
}

std::uint64_t
RingArchiveReader::startGcc() const
{
    return segments_.front().startGcc;
}

std::uint64_t
RingArchiveReader::endGcc() const
{
    return segments_.back().endGcc;
}

std::size_t
RingArchiveReader::checkpointCount() const
{
    return ckpt_boundary_.size();
}

std::vector<std::uint64_t>
RingArchiveReader::checkpointGccs() const
{
    std::vector<std::uint64_t> gccs;
    gccs.reserve(ckpt_boundary_.size());
    for (const std::size_t b : ckpt_boundary_)
        gccs.push_back(boundaryCheckpoint(b).gcc);
    return gccs;
}

const SystemCheckpoint &
RingArchiveReader::checkpointAt(std::size_t index) const
{
    if (index >= ckpt_boundary_.size())
        throw CheckpointOutOfRangeError(
            index, ckpt_boundary_.size(),
            "ring checkpoint " + std::to_string(index) + " of "
                + std::to_string(ckpt_boundary_.size()));
    return boundaryCheckpoint(ckpt_boundary_[index]);
}

std::size_t
RingArchiveReader::newestCheckpointAtOrBefore(std::uint64_t cycle) const
{
    const std::vector<std::uint64_t> gccs = checkpointGccs();
    const auto it =
        std::upper_bound(gccs.begin(), gccs.end(), cycle);
    if (it == gccs.begin())
        throw CheckpointOutOfRangeError(
            0, gccs.size(),
            "cycle " + std::to_string(cycle)
                + " predates the retained window"
                + (gccs.empty()
                       ? std::string(" (no checkpoints retained)")
                       : " (oldest checkpoint at GCC "
                             + std::to_string(gccs.front()) + ")"));
    return static_cast<std::size_t>(it - gccs.begin()) - 1;
}

WorkerPool &
RingArchiveReader::ioPool() const
{
    if (!pool_)
        pool_ = std::make_unique<WorkerPool>(io_.resolvedIoThreads());
    return *pool_;
}

std::vector<std::uint8_t>
RingArchiveReader::segmentPayload(std::size_t pos) const
{
    const RingSegmentInfo &info = segments_[pos];
    std::ifstream in(seg_paths_[pos], std::ios::binary);
    if (!in)
        throw ArchiveError(ArchiveSection::kSegment, pos,
                           "cannot open " + seg_paths_[pos]);
    in.seekg(static_cast<std::streamoff>(payload_off_[pos]));
    std::vector<std::uint8_t> comp(
        static_cast<std::size_t>(info.compBytes));
    in.read(reinterpret_cast<char *>(comp.data()),
            static_cast<std::streamsize>(comp.size()));
    if (static_cast<std::uint64_t>(in.gcount()) != info.compBytes)
        throw ArchiveError(ArchiveSection::kSegment, pos,
                           "torn payload in " + seg_paths_[pos]);
    if (crc32(comp.data(), comp.size()) != info.crc32)
        throw ArchiveError(ArchiveSection::kSegment, pos,
                           "payload CRC mismatch");
    std::vector<std::uint8_t> raw;
    try {
        const Lz77 codec;
        raw = codec.decompress(comp);
    } catch (const RecordingFormatError &e) {
        throw ArchiveError(ArchiveSection::kSegment, pos, e.what());
    }
    if (raw.size() != info.rawBytes)
        throw ArchiveError(ArchiveSection::kSegment, pos,
                           "decompressed size mismatch");
    return raw;
}

Recording
RingArchiveReader::readInterval(std::size_t from, std::size_t to) const
{
    if (from >= checkpointCount())
        throw CheckpointOutOfRangeError(
            from, checkpointCount(),
            "interval start checkpoint " + std::to_string(from)
                + " of " + std::to_string(checkpointCount()));
    if (to != kToEnd && (to <= from || to >= checkpointCount()))
        throw CheckpointOutOfRangeError(
            to, checkpointCount(),
            "interval [" + std::to_string(from) + ", "
                + std::to_string(to)
                + ") is not a valid checkpoint pair");
    if (to == kToEnd && !recovery_.clean)
        throw ArchiveError(
            ArchiveSection::kFooter, ArchiveError::kNoSegment,
            "ring was not closed cleanly: final stats are "
            "unavailable, bound the interval at a retained "
            "checkpoint");

    const std::size_t lo = ckpt_boundary_[from];
    const std::size_t hi =
        to == kToEnd ? segments_.size() : ckpt_boundary_[to];
    const unsigned n = machine_.numProcs;
    Recording rec = skeletonRecording(machine_, mode_, app_name_,
                                      workload_seed_,
                                      iterations_percent_);
    const SystemCheckpoint &start = boundaryCheckpoint(lo);
    appendSyntheticPrefix(rec, start);

    std::vector<std::uint64_t> io_base;
    for (const ThreadContext &ctx : start.contexts)
        io_base.push_back(ctx.ioLoadCount);
    const std::size_t count = hi - lo;
    std::vector<SegmentSlice> slices(count);
    {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(count);
        for (std::size_t k = 0; k < count; ++k)
            tasks.push_back([this, &slices, lo, n, k] {
                slices[k] = decodeSegment(segmentPayload(lo + k), n,
                                          lo + k);
            });
        std::vector<std::exception_ptr> errors;
        runIndexed(ioPool(), std::move(tasks), errors);
        for (std::size_t k = 0; k < count; ++k) {
            if (errors[k])
                std::rethrow_exception(errors[k]);
            appendSlice(rec, slices[k], io_base, lo + k,
                        /*use_masks=*/false);
            slices[k] = SegmentSlice();
        }
    }

    rec.fingerprint.perProcAcc = per_proc_acc_;
    rec.fingerprint.perProcRetired = per_proc_retired_;
    rec.fingerprint.finalMemHash = final_mem_hash_;
    rec.checkpoints.push_back(start);
    if (to != kToEnd)
        rec.checkpoints.push_back(
            boundaryCheckpoint(ckpt_boundary_[to]));
    validateRecording(rec);
    return rec;
}

Recording
RingArchiveReader::readAll() const
{
    if (!recovery_.clean)
        throw ArchiveError(
            ArchiveSection::kFooter, ArchiveError::kNoSegment,
            "ring was not closed cleanly: readAll unavailable");
    if (segments_.front().segId != 0)
        throw CheckpointOutOfRangeError(
            0, checkpointCount(),
            "run start evicted: oldest retained segment is "
                + std::to_string(segments_.front().segId));

    Recording rec = skeletonRecording(machine_, mode_, app_name_,
                                      workload_seed_,
                                      iterations_percent_);
    const unsigned n = machine_.numProcs;
    std::vector<std::uint64_t> io_base(n, 0);
    const std::size_t count = segments_.size();
    std::vector<SegmentSlice> slices(count);
    {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            tasks.push_back([this, &slices, n, i] {
                slices[i] =
                    decodeSegment(segmentPayload(i), n, i);
            });
        std::vector<std::exception_ptr> errors;
        runIndexed(ioPool(), std::move(tasks), errors);
        for (std::size_t i = 0; i < count; ++i) {
            if (errors[i])
                std::rethrow_exception(errors[i]);
            appendSlice(rec, slices[i], io_base, i,
                        /*use_masks=*/true);
            slices[i] = SegmentSlice();
            if (i + 1 < count)
                rec.checkpoints.push_back(
                    segments_[i].endCheckpoint);
        }
    }
    rec.fingerprint.perProcAcc = per_proc_acc_;
    rec.fingerprint.perProcRetired = per_proc_retired_;
    rec.fingerprint.finalMemHash = final_mem_hash_;
    rec.stats.totalCycles = stats_[0];
    rec.stats.retiredInstrs = stats_[1];
    rec.stats.executedInstrs = stats_[2];
    rec.stats.committedChunks = stats_[3];
    rec.stats.squashes = stats_[4];
    rec.stats.overflowTruncations = stats_[5];
    rec.stats.collisionTruncations = stats_[6];
    rec.stats.hardTruncations = stats_[7];
    validateRecording(rec);
    return rec;
}

} // namespace delorean
