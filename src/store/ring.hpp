/**
 * @file
 * Rotating segmented ring archive: always-on recording with a bounded
 * disk budget and a bounded replay-start lag.
 *
 * The batch `.dla` container (store/archive) holds a whole run; the
 * ring holds a sliding window of one. A ring is a directory:
 *
 *   ring.meta       one-time metadata (machine, mode, app, knobs)
 *   seg-<id>        one file per checkpoint interval, self-describing
 *   ring.index      retained-set snapshot, atomically rewritten
 *
 * Each segment file carries its own header — magic, segment id, GCC
 * interval, the full START and END system checkpoints, payload sizes
 * and CRCs — so any contiguous run of surviving segment files is
 * independently decodable and *validatable* without a footer: replay
 * can start at any retained segment's start checkpoint and every
 * bounded interval is judged against the end checkpoint it runs to.
 * (This inverts the `.dla` layout, where checkpoints live in a footer
 * written last; a footer is exactly what a crashed recorder never
 * wrote.) The payload bytes for a given checkpoint interval are
 * byte-identical to the batch archive's — both containers share the
 * slice builders in store/archive_detail.hpp.
 *
 * Availability guarantee (the checkpoint-placement contract): with
 * checkpoints every P commits, a segment spans at most P commits and
 * becomes durable when the next checkpoint cuts it. At any frontier
 * GCC g >= P the newest durable segment's start checkpoint is at
 * most 2P-1 commits behind g (worst case: the in-progress segment is
 * one commit short of cutting, so the newest *complete* segment
 * started two periods ago). Eviction never removes the newest
 * complete segment, so a decodable replay starting point always
 * exists within the last T cycles provided T >= 2P —
 * RingOptions::validate() rejects anything tighter with a typed
 * ConfigError. The disk budget bounds retained bytes best-effort:
 * oldest whole segments are evicted first, and when the protected
 * newest segment alone exceeds the budget the writer keeps it and
 * counts a budgetOverrun instead of giving up the guarantee.
 *
 * Crash consistency: segment files are written append-only in id
 * order and ring.index is replaced via write-to-temp + rename. After
 * a crash (torn tail segment, missing or stale index),
 * RingArchiveReader::open falls back to a directory scan, drops
 * structurally invalid files, and retains the newest contiguous run
 * of valid segments — salvage, never a crash or a silent wrong
 * answer.
 */

#ifndef DELOREAN_STORE_RING_HPP_
#define DELOREAN_STORE_RING_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/recording.hpp"
#include "store/archive.hpp"

namespace delorean
{

/** Configuration of a ring archive. */
struct RingOptions
{
    /// Retained-bytes target. Oldest segments are evicted once the
    /// live set exceeds this; the newest complete segment is never
    /// evicted (see budgetOverruns).
    std::uint64_t budgetBytes = 4u << 20;

    /// Commits between checkpoints — the placement period P the
    /// recorder must be driven with (Recorder::record's
    /// checkpoint_period). Segments are cut at every checkpoint.
    std::uint64_t checkpointPeriod = 50;

    /// Replay-start lag bound T, in commits: a decodable starting
    /// point must exist within the last T commits. 0 resolves to the
    /// tightest feasible bound, 2 * checkpointPeriod.
    std::uint64_t maxReplayLag = 0;

    /// Codec parallelism for segment compress/decode.
    ArchiveIoOptions io{};

    /** maxReplayLag with the 0-default resolved (2P). */
    std::uint64_t resolvedLag() const;

    /**
     * Reject infeasible configurations with a typed ConfigError:
     * zero period or budget, or maxReplayLag < 2 * checkpointPeriod
     * (no placement of period-P checkpoints can keep a durable start
     * point closer than 2P-1 commits behind the frontier).
     */
    void validate() const;
};

/** Everything known about one retained ring segment. */
struct RingSegmentInfo
{
    std::uint64_t segId = 0;   ///< global monotone cut counter
    std::uint64_t startGcc = 0;
    std::uint64_t endGcc = 0;
    std::uint64_t rawBytes = 0;  ///< decompressed payload size
    std::uint64_t compBytes = 0; ///< stored payload size
    std::uint64_t crc32 = 0;     ///< CRC-32 of the compressed payload
    std::uint64_t fileBytes = 0; ///< whole segment file size
    bool isTail = false;         ///< final segment of a clean close
    bool hasStartCheckpoint = false; ///< false only for segment 0
    bool hasEndCheckpoint = false;   ///< false only for the tail
    SystemCheckpoint startCheckpoint;
    SystemCheckpoint endCheckpoint;
};

/** Writer-side counters (RingArchiveWriter::stats). */
struct RingWriterStats
{
    std::uint64_t segmentsCut = 0;
    std::uint64_t segmentsEvicted = 0;
    std::uint64_t liveBytes = 0;     ///< retained segment files
    std::uint64_t bytesWritten = 0;  ///< cumulative, incl. evicted
    /// Commits the live set exceeded the budget with nothing left to
    /// evict (the protected newest segment alone is over budget).
    std::uint64_t budgetOverruns = 0;
    /// Worst observed replay-start lag, in commits: at the moment a
    /// segment completed, how far its end ran ahead of the then-newest
    /// durable start checkpoint. Bounded by 2P - 1 <= T.
    std::uint64_t worstStartLag = 0;
    /// Largest observed checkpoint spacing (commits).
    std::uint64_t maxCheckpointSpacing = 0;
};

/**
 * Streams a recording into a ring directory. Drive it exactly like
 * StreamingArchiveWriter: pass it as (or call it from) the engine's
 * onCheckpoint hook while recording, then close(rec) with the
 * finished recording. Segment payload build runs on the caller's
 * thread; compression, file writes, eviction and index rewrites run
 * on a background flusher so recording never blocks on the disk.
 */
class RingArchiveWriter
{
  public:
    /**
     * @throws ConfigError when @p opts is infeasible (validate()).
     * The directory is created if absent; stale ring files from a
     * previous run in the same directory are removed.
     */
    RingArchiveWriter(const std::string &dir, const RingOptions &opts);
    ~RingArchiveWriter();

    RingArchiveWriter(const RingArchiveWriter &) = delete;
    RingArchiveWriter &operator=(const RingArchiveWriter &) = delete;

    /** EngineOptions::onCheckpoint-compatible feed. */
    void onCheckpoint(const Recording &rec);

    /**
     * Cut the tail segment, drain the flusher and write the clean
     * index (final stats included). The writer is unusable after.
     */
    void close(const Recording &rec);

    bool closed() const;

    const std::string &directory() const;

    RingWriterStats stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Batch convenience: feed a finished recording and close. */
RingWriterStats writeRing(const Recording &rec, const std::string &dir,
                          const RingOptions &opts);

/** How RingArchiveReader::open arrived at the retained set. */
struct RingRecoveryInfo
{
    /// ring.index was present, intact and agreed with the scan.
    bool usedIndex = false;
    /// Clean close: tail segment retained and final stats available
    /// (unbounded reads and readAll work).
    bool clean = false;
    /// Segment files dropped during salvage (torn, corrupt,
    /// non-contiguous or duplicate).
    std::size_t droppedSegments = 0;
    /// Human-readable salvage notes, deterministic order.
    std::vector<std::string> notes;
};

/**
 * Reads a ring directory, recovering the retained window even after
 * a crash. All failure modes are typed: a missing or corrupt
 * container raises ArchiveError, an interval request outside the
 * retained window raises CheckpointOutOfRangeError.
 */
class RingArchiveReader
{
  public:
    static constexpr std::size_t kToEnd = static_cast<std::size_t>(-1);

    /** True when @p dir has a plausible ring.meta. */
    static bool looksLikeRing(const std::string &dir);

    static RingArchiveReader open(const std::string &dir,
                                  const ArchiveIoOptions &io = {});

    RingArchiveReader(RingArchiveReader &&) noexcept;
    RingArchiveReader &operator=(RingArchiveReader &&) noexcept;
    ~RingArchiveReader();

    const MachineConfig &machine() const { return machine_; }
    const ModeConfig &mode() const { return mode_; }
    const std::string &appName() const { return app_name_; }
    std::uint64_t workloadSeed() const { return workload_seed_; }
    unsigned iterationsPercent() const { return iterations_percent_; }
    /** The options the ring was recorded with (from ring.meta). */
    const RingOptions &options() const { return opts_; }

    const RingRecoveryInfo &recovery() const { return recovery_; }

    /** Retained segments, ascending segId (contiguous). */
    const std::vector<RingSegmentInfo> &segments() const
    {
        return segments_;
    }

    /** Retained window in GCC space: (startGcc, endGcc]. */
    std::uint64_t startGcc() const;
    std::uint64_t endGcc() const;

    /** Decodable replay starting points, ascending GCC. */
    std::size_t checkpointCount() const;
    std::vector<std::uint64_t> checkpointGccs() const;
    const SystemCheckpoint &checkpointAt(std::size_t index) const;

    /**
     * Index of the newest checkpoint with GCC <= @p cycle — the
     * time-travel seek. @throws CheckpointOutOfRangeError when
     * @p cycle predates the retained window.
     */
    std::size_t newestCheckpointAtOrBefore(std::uint64_t cycle) const;

    /**
     * Reconstruct the interval recording between checkpoints @p from
     * and @p to (indices into the retained checkpoint list), exactly
     * like ArchiveReader::readInterval — byte-identical to the batch
     * archive's view of the same GCC interval. @p to == kToEnd runs
     * to the recording's end and requires a cleanly closed ring (the
     * final stats live in the clean index); bounded intervals work on
     * salvaged rings too.
     */
    Recording readInterval(std::size_t from,
                           std::size_t to = kToEnd) const;

    /**
     * Reconstruct the whole recording. Requires a cleanly closed ring
     * that still retains segment 0 (nothing evicted); a ring whose
     * history was evicted raises CheckpointOutOfRangeError.
     */
    Recording readAll() const;

  private:
    RingArchiveReader();

    std::vector<std::uint8_t> segmentPayload(std::size_t pos) const;
    WorkerPool &ioPool() const;
    /// Checkpoint at boundary @p b (0..segments().size()).
    const SystemCheckpoint &boundaryCheckpoint(std::size_t b) const;

    std::string dir_;
    ArchiveIoOptions io_;
    RingOptions opts_;
    MachineConfig machine_;
    ModeConfig mode_;
    std::string app_name_;
    std::uint64_t workload_seed_ = 0;
    unsigned iterations_percent_ = 100;
    RingRecoveryInfo recovery_;
    std::vector<RingSegmentInfo> segments_;
    std::vector<std::string> seg_paths_;      ///< parallel to segments_
    std::vector<std::uint64_t> payload_off_;  ///< parallel to segments_
    /// Boundary index (0..segments count) of each checkpoint.
    std::vector<std::size_t> ckpt_boundary_;
    /// Final stats (clean rings only): engine stats + fingerprint.
    std::uint64_t stats_[8] = {};
    std::vector<std::uint64_t> per_proc_acc_;
    std::vector<std::uint64_t> per_proc_retired_;
    std::uint64_t final_mem_hash_ = 0;
    mutable std::unique_ptr<WorkerPool> pool_;
};

} // namespace delorean

#endif // DELOREAN_STORE_RING_HPP_
