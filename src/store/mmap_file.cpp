#include "store/mmap_file.hpp"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DELOREAN_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define DELOREAN_HAVE_MMAP 0
#endif

namespace delorean
{

MappedFile::~MappedFile()
{
    close();
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false))
{
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        close();
        data_ = std::exchange(other.data_, nullptr);
        size_ = std::exchange(other.size_, 0);
        mapped_ = std::exchange(other.mapped_, false);
    }
    return *this;
}

bool
MappedFile::supported()
{
    return DELOREAN_HAVE_MMAP != 0;
}

void
MappedFile::close()
{
#if DELOREAN_HAVE_MMAP
    if (data_ != nullptr)
        ::munmap(const_cast<std::uint8_t *>(data_), size_);
#endif
    data_ = nullptr;
    size_ = 0;
    mapped_ = false;
}

bool
MappedFile::open(const std::string &path)
{
    close();
#if DELOREAN_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    struct stat st;
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        return false;
    }
    if (st.st_size == 0) {
        // mmap rejects length 0; an empty file is a valid (empty)
        // span so the error behavior matches the buffered path.
        ::close(fd);
        mapped_ = true;
        return true;
    }
    void *map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (map == MAP_FAILED)
        return false;
    data_ = static_cast<const std::uint8_t *>(map);
    size_ = static_cast<std::size_t>(st.st_size);
    mapped_ = true;
    return true;
#else
    (void)path;
    return false;
#endif
}

} // namespace delorean
