#include "analysis/race_detector.hpp"

#include <algorithm>
#include <cstdio>

#include "common/errors.hpp"
#include "core/recording.hpp"
#include "trace/layout.hpp"

namespace delorean
{

namespace
{

/** Value-observing access kinds (loads and both AMOs). */
bool
accessReads(AccessKind kind)
{
    return kind != AccessKind::kStore;
}

/** Memory-writing access kinds (stores and both AMOs). */
bool
accessWrites(AccessKind kind)
{
    return kind != AccessKind::kLoad;
}

const char *
accessKindName(AccessKind kind)
{
    switch (kind) {
      case AccessKind::kLoad:
        return "load";
      case AccessKind::kStore:
        return "store";
      case AccessKind::kAmoSwap:
        return "amoswap";
      case AccessKind::kAmoFetchAdd:
        return "amoadd";
    }
    return "?";
}

std::string
hexAddr(Addr addr)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%08llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

std::string
describeAccess(const RaceAccess &a)
{
    return "P" + std::to_string(a.proc) + " chunk "
           + std::to_string(a.seq) + " commit "
           + std::to_string(a.commitPos) + " "
           + accessKindName(a.kind);
}

} // namespace

void
VectorClock::set(unsigned p, std::uint64_t value)
{
    if (p >= c_.size())
        c_.resize(p + 1, 0);
    c_[p] = value;
}

void
VectorClock::tick(unsigned p)
{
    if (p >= c_.size())
        c_.resize(p + 1, 0);
    if (c_[p] == ~0ull)
        throw ReplayError("vector clock component for proc "
                          + std::to_string(p)
                          + " wrapped around 64 bits");
    ++c_[p];
}

void
VectorClock::join(const VectorClock &other)
{
    if (other.c_.size() > c_.size())
        c_.resize(other.c_.size(), 0);
    for (std::size_t i = 0; i < other.c_.size(); ++i)
        c_[i] = std::max(c_[i], other.c_[i]);
}

std::string
RaceFinding::describe() const
{
    return "race @" + hexAddr(word) + ": " + describeAccess(prior)
           + " vs " + describeAccess(racing);
}

std::string
RaceReport::describe() const
{
    std::string out;
    for (const RaceFinding &f : findings) {
        out += f.describe();
        out += '\n';
    }
    out += "races: " + std::to_string(findings.size()) + "  chunks: "
           + std::to_string(chunksObserved) + "  accesses: "
           + std::to_string(accessesChecked) + "  words: "
           + std::to_string(wordsTracked) + "\n";
    return out;
}

void
RaceDetector::onReplayBegin(const Recording &rec)
{
    procs_ = rec.machine.numProcs;
    clocks_.assign(procs_, VectorClock(procs_));
    for (unsigned p = 0; p < procs_; ++p)
        clocks_[p].tick(p); // epoch clock 1: 0 means "never accessed"
    syncClocks_.clear();
    words_.clear();
    reportedWords_.clear();
    lastPos_ = 0;
    sawEvent_ = false;
    report_ = RaceReport{};
}

void
RaceDetector::onChunkRetire(const ChunkObservation &obs)
{
    if (sawEvent_ && obs.commitPos <= lastPos_)
        throw ReplayError(
            "race detector received commit position "
            + std::to_string(obs.commitPos)
            + " after position " + std::to_string(lastPos_)
            + " (canonical order violated)");
    lastPos_ = obs.commitPos;
    sawEvent_ = true;
    ++report_.chunksObserved;

    if (obs.proc >= procs_)
        throw ReplayError("race detector observed chunk from proc "
                          + std::to_string(obs.proc) + " of "
                          + std::to_string(procs_));
    VectorClock &vc = clocks_[obs.proc];

    for (const MemAccess &a : *obs.accesses) {
        const Addr word = a.addr & ~static_cast<Addr>(kWordBytes - 1);
        if (AddressLayout::isUncached(word)
            || AddressLayout::isPrivate(word)
            || AddressLayout::isDma(word))
            continue;
        if (AddressLayout::isLock(word)
            || AddressLayout::isBarrier(word)) {
            handleSync(word, a.kind, vc);
            continue;
        }
        RaceAccess cur;
        cur.proc = obs.proc;
        cur.seq = obs.seq;
        cur.commitPos = obs.commitPos;
        cur.kind = a.kind;
        checkData(word, cur, vc);
    }

    vc.tick(obs.proc);
}

void
RaceDetector::onDmaRetire(const DmaObservation &obs)
{
    // DMA writes are device-ordered by the memory arbiter and target
    // the DMA buffer region, which the detector skips; only the
    // canonical-order invariant is maintained here.
    if (sawEvent_ && obs.commitPos <= lastPos_)
        throw ReplayError(
            "race detector received DMA commit position "
            + std::to_string(obs.commitPos)
            + " after position " + std::to_string(lastPos_)
            + " (canonical order violated)");
    lastPos_ = obs.commitPos;
    sawEvent_ = true;
}

void
RaceDetector::onReplayEnd()
{
    report_.wordsTracked = words_.size();
}

void
RaceDetector::handleSync(Addr word, AccessKind kind, VectorClock &vc)
{
    VectorClock &sw =
        syncClocks_.try_emplace(word, procs_).first->second;
    // Acquire before release so an AMO chains: it observes everything
    // prior holders published, then republishes its own knowledge.
    if (accessReads(kind))
        vc.join(sw);
    if (accessWrites(kind))
        sw.join(vc);
}

void
RaceDetector::checkData(Addr word, const RaceAccess &cur,
                        const VectorClock &vc)
{
    ++report_.accessesChecked;
    WordState &ws = words_.try_emplace(word).first->second;
    if (ws.readClock.empty()) {
        ws.readClock.assign(procs_, 0);
        ws.read.assign(procs_, RaceAccess{});
    }

    const bool writes = accessWrites(cur.kind);
    const RaceAccess *prior = nullptr;
    if (ws.writeClock != 0 && ws.write.proc != cur.proc
        && !vc.covers(ws.write.proc, ws.writeClock))
        prior = &ws.write;
    if (prior == nullptr && writes) {
        for (unsigned q = 0; q < procs_; ++q) {
            if (q != cur.proc && ws.readClock[q] != 0
                && !vc.covers(q, ws.readClock[q])) {
                prior = &ws.read[q];
                break;
            }
        }
    }
    if (prior != nullptr && reportedWords_.insert(word).second) {
        RaceFinding f;
        f.word = word;
        f.prior = *prior;
        f.racing = cur;
        report_.findings.push_back(f);
    }

    if (writes) {
        ws.writeClock = vc.at(cur.proc);
        ws.write = cur;
        // A write ordered after the outstanding reads subsumes them;
        // an unordered one was just reported. Either way later
        // accesses need only be checked against this write.
        std::fill(ws.readClock.begin(), ws.readClock.end(), 0);
    }
    if (accessReads(cur.kind)) {
        ws.readClock[cur.proc] = vc.at(cur.proc);
        ws.read[cur.proc] = cur;
    }
}

} // namespace delorean
