/**
 * @file
 * Happens-before data race detector — the first consumer of the
 * replay-observer plugin API (core/replay_observer.hpp).
 *
 * The detector derives a happens-before relation from the recorded
 * chunk-commit order and the workload's synchronization accesses, then
 * flags pairs of conflicting data accesses (same word, at least one a
 * write, different processors) that no happens-before path orders:
 *
 *  - Each processor carries a vector clock, ticked once per committed
 *    chunk, so every chunk has a distinct epoch (proc, clock). Chunk
 *    atomicity makes this the natural granularity: sync edges inside a
 *    chunk still apply access-by-access (the trace is program-ordered),
 *    coarser epochs only ever *add* order, so granularity can hide a
 *    same-chunk race but never invent one.
 *  - Lock and barrier words (AddressLayout::isLock / isBarrier) are
 *    synchronization, not data: a value-observing access (load, AMO)
 *    acquires the word's sync clock into the processor's clock, a
 *    memory-writing access releases the processor's clock into it.
 *    This models test-and-set locks, fetch&add barrier arrival chains
 *    and generation-word spin loops without workload-specific cases.
 *  - Private-region and DMA-buffer words are skipped: private words are
 *    per-processor by construction, DMA words are device-ordered by
 *    the memory arbiter.
 *  - Everything else (shared data, kernel words, seeded raceWord()s)
 *    is race-checked FastTrack-style: per word, a last-write epoch and
 *    per-processor read epochs, each with full provenance.
 *
 * Determinism: the detector consumes the canonical commit-order event
 * stream the observer hub guarantees, keeps findings in discovery
 * order, and reports at most one finding per word (the first in
 * canonical order). RaceReport::describe() is therefore byte-identical
 * across the serial DES replayer and the chunk-parallel replayer at
 * any DELOREAN_JOBS, window and shard setting — which the detector
 * tests assert literally.
 */

#ifndef DELOREAN_ANALYSIS_RACE_DETECTOR_HPP_
#define DELOREAN_ANALYSIS_RACE_DETECTOR_HPP_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "core/replay_observer.hpp"

namespace delorean
{

/**
 * Fixed-width vector clock over processor components. Components
 * saturate nowhere: an increment past the 64-bit ceiling raises a
 * typed ReplayError (a genuine recording would need 2^64 chunks, so
 * wraparound can only mean corrupted analysis state — and silently
 * wrapping would erase happens-before edges and fabricate races).
 */
class VectorClock
{
  public:
    VectorClock() = default;
    explicit VectorClock(unsigned procs) : c_(procs, 0) {}

    unsigned size() const { return static_cast<unsigned>(c_.size()); }

    /** Component @p p; components past size() read as 0. */
    std::uint64_t
    at(unsigned p) const
    {
        return p < c_.size() ? c_[p] : 0;
    }

    /** Set component @p p (grows the clock; used by tests). */
    void set(unsigned p, std::uint64_t value);

    /** Increment component @p p; throws ReplayError on wraparound. */
    void tick(unsigned p);

    /** Component-wise maximum (grows to the larger size). */
    void join(const VectorClock &other);

    /** True iff the epoch (@p p, @p clock) happened before this clock. */
    bool
    covers(unsigned p, std::uint64_t clock) const
    {
        return at(p) >= clock;
    }

  private:
    std::vector<std::uint64_t> c_;
};

/** Provenance of one side of a racy access pair. */
struct RaceAccess
{
    ProcId proc = 0;
    ChunkSeq seq = 0;            ///< processor-local logical chunk
    std::uint64_t commitPos = 0; ///< canonical global commit position
    AccessKind kind = AccessKind::kLoad;
};

/** One detected data race (the first on its word, canonical order). */
struct RaceFinding
{
    Addr word = 0;     ///< word-granular address (8-byte aligned)
    RaceAccess prior;  ///< the earlier access in canonical order
    RaceAccess racing; ///< the unordered later access

    /** One-line deterministic rendering. */
    std::string describe() const;
};

/** Full detector output for one replay. */
struct RaceReport
{
    std::vector<RaceFinding> findings; ///< canonical discovery order
    std::uint64_t chunksObserved = 0;
    std::uint64_t accessesChecked = 0; ///< data accesses race-checked
    std::uint64_t wordsTracked = 0;    ///< distinct data words seen

    bool clean() const { return findings.empty(); }

    /**
     * Multi-line rendering, one finding per line plus a summary
     * footer. Byte-identical for byte-identical event streams — the
     * determinism tests compare these strings directly.
     */
    std::string describe() const;
};

/**
 * ReplayObserver that performs happens-before race detection. Attach
 * via EngineOptions::observer or ParallelReplayOptions::observer; one
 * instance per replay (onReplayBegin resets all state). The report is
 * valid after onReplayEnd().
 */
class RaceDetector : public ReplayObserver
{
  public:
    RaceDetector() = default;

    void onReplayBegin(const Recording &rec) override;
    void onChunkRetire(const ChunkObservation &obs) override;
    void onDmaRetire(const DmaObservation &obs) override;
    void onReplayEnd() override;

    const RaceReport &report() const { return report_; }

  private:
    /** Per-word FastTrack-style metadata. */
    struct WordState
    {
        std::uint64_t writeClock = 0; ///< 0 = never written
        RaceAccess write;
        /// Per-processor read epochs; clock 0 = no outstanding read.
        std::vector<std::uint64_t> readClock;
        std::vector<RaceAccess> read;
    };

    void checkData(Addr word, const RaceAccess &cur,
                   const VectorClock &vc);
    void handleSync(Addr word, AccessKind kind, VectorClock &vc);

    unsigned procs_ = 0;
    std::vector<VectorClock> clocks_;
    std::unordered_map<Addr, VectorClock> syncClocks_;
    std::unordered_map<Addr, WordState> words_;
    std::unordered_set<Addr> reportedWords_;
    std::uint64_t lastPos_ = 0;
    bool sawEvent_ = false;
    RaceReport report_;
};

} // namespace delorean

#endif // DELOREAN_ANALYSIS_RACE_DETECTOR_HPP_
