/**
 * @file
 * WordMap: open-addressed Addr -> word map with O(1) epoch clearing.
 *
 * The chunk store buffer maps word addresses to the last speculative
 * value so same-chunk loads forward correctly. It is rebuilt for every
 * chunk (thousands per simulated second) and probed on every load, so
 * std::unordered_map's node allocations and modulo hashing dominated
 * the engine's profile. This map keeps a power-of-two flat slot array
 * with linear probing, and clears by bumping an epoch counter: slots
 * whose tag does not match the current epoch read as empty, so a
 * recycled chunk's buffer clears in O(1) and keeps its grown capacity
 * (the same technique SignatureT uses for its words).
 *
 * No erase operation (the engine never removes individual stores), so
 * probing needs no tombstones.
 */

#ifndef DELOREAN_COMMON_WORD_MAP_HPP_
#define DELOREAN_COMMON_WORD_MAP_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace delorean
{

/** Flat insert-or-assign hash map from Addr to 64-bit values. */
class WordMap
{
  public:
    WordMap() { slots_.resize(kMinSlots); }

    /** Number of live entries. */
    std::size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }

    /** O(1): invalidates every entry by bumping the epoch. */
    void
    clear()
    {
        size_ = 0;
        if (++epoch_ == 0) {
            // Epoch wrapped: hard-reset the tags so entries from 2^32
            // clears ago cannot come back to life.
            for (Slot &s : slots_)
                s.epoch = 0;
            epoch_ = 1;
        }
    }

    /** Insert-or-find @p key; returns a reference to its value. */
    std::uint64_t &
    operator[](Addr key)
    {
        if ((size_ + 1) * 4 > slots_.size() * 3)
            grow();
        Slot &slot = probe(key);
        if (slot.epoch != epoch_) {
            slot.key = key;
            slot.value = 0;
            slot.epoch = epoch_;
            ++size_;
        }
        return slot.value;
    }

    /** Pointer to @p key's value, or nullptr when absent. */
    const std::uint64_t *
    find(Addr key) const
    {
        std::size_t i = indexOf(key);
        for (;;) {
            const Slot &slot = slots_[i];
            if (slot.epoch != epoch_)
                return nullptr;
            if (slot.key == key)
                return &slot.value;
            i = (i + 1) & (slots_.size() - 1);
        }
    }

    bool contains(Addr key) const { return find(key) != nullptr; }

    /**
     * TEST ONLY: jump the epoch counter to @p epoch so wraparound
     * behavior can be exercised without 2^32 clear() calls. Entries
     * inserted under other epochs immediately read as absent.
     */
    void
    forceEpochForTest(std::uint32_t epoch)
    {
        epoch_ = epoch;
        size_ = 0;
    }

  private:
    struct Slot
    {
        Addr key = 0;
        std::uint64_t value = 0;
        std::uint32_t epoch = 0; ///< live iff equal to the map's epoch
    };

    static constexpr std::size_t kMinSlots = 16;

    std::size_t
    indexOf(Addr key) const
    {
        return static_cast<std::size_t>(mix64(key))
               & (slots_.size() - 1);
    }

    /** First slot holding @p key, or the first free slot for it. */
    Slot &
    probe(Addr key)
    {
        std::size_t i = indexOf(key);
        for (;;) {
            Slot &slot = slots_[i];
            if (slot.epoch != epoch_ || slot.key == key)
                return slot;
            i = (i + 1) & (slots_.size() - 1);
        }
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        const std::uint32_t live = epoch_;
        epoch_ = 1;
        for (const Slot &s : old) {
            if (s.epoch != live)
                continue;
            std::size_t i = indexOf(s.key);
            while (slots_[i].epoch == epoch_)
                i = (i + 1) & (slots_.size() - 1);
            slots_[i].key = s.key;
            slots_[i].value = s.value;
            slots_[i].epoch = epoch_;
        }
    }

    std::vector<Slot> slots_; ///< power-of-two length
    std::size_t size_ = 0;
    std::uint32_t epoch_ = 1; ///< 0 is reserved for "never written"
};

} // namespace delorean

#endif // DELOREAN_COMMON_WORD_MAP_HPP_
