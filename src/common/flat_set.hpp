/**
 * @file
 * FlatSet: a sorted-vector set for small cardinalities.
 *
 * The engine's per-chunk line sets hold tens of entries (a chunk
 * touches tens of cache lines, not thousands), where an
 * std::unordered_set pays for hashing, pointer-chasing buckets and a
 * heap node per element on every access. A sorted vector with binary
 * search beats it comfortably at that size, keeps its capacity across
 * clear() so recycled chunks allocate nothing, and iterates in a
 * deterministic (ascending) order — which also makes conflict checks
 * and stratification independent of insertion history.
 */

#ifndef DELOREAN_COMMON_FLAT_SET_HPP_
#define DELOREAN_COMMON_FLAT_SET_HPP_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace delorean
{

/** Sorted-vector set of trivially comparable values. */
template <typename T>
class FlatSet
{
  public:
    using const_iterator = typename std::vector<T>::const_iterator;

    /** Insert @p value; returns true if it was not already present. */
    bool
    insert(const T &value)
    {
        // Hot path: chunk access streams revisit the newest line far
        // more often than they introduce a smaller one.
        if (values_.empty() || values_.back() < value) {
            values_.push_back(value);
            return true;
        }
        if (values_.back() == value)
            return false;
        const auto it =
            std::lower_bound(values_.begin(), values_.end(), value);
        if (it != values_.end() && *it == value)
            return false;
        values_.insert(it, value);
        return true;
    }

    /** Membership test (binary search). */
    bool
    contains(const T &value) const
    {
        const auto it =
            std::lower_bound(values_.begin(), values_.end(), value);
        return it != values_.end() && *it == value;
    }

    /** Drop all elements, keeping the allocation. */
    void clear() { values_.clear(); }

    void reserve(std::size_t n) { values_.reserve(n); }

    std::size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }

    const_iterator begin() const { return values_.begin(); }
    const_iterator end() const { return values_.end(); }

    bool operator==(const FlatSet &) const = default;

  private:
    std::vector<T> values_; ///< strictly ascending
};

} // namespace delorean

#endif // DELOREAN_COMMON_FLAT_SET_HPP_
