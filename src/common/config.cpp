#include "common/config.hpp"

namespace delorean
{

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::kOrderAndSize:
        return "Order&Size";
      case ExecMode::kOrderOnly:
        return "OrderOnly";
      case ExecMode::kPicoLog:
        return "PicoLog";
    }
    return "unknown";
}

} // namespace delorean
