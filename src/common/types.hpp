/**
 * @file
 * Fundamental type aliases shared by every DeLorean module.
 */

#ifndef DELOREAN_COMMON_TYPES_HPP_
#define DELOREAN_COMMON_TYPES_HPP_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace delorean
{

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Simulated time in processor cycles. */
using Cycle = std::uint64_t;

/** Processor identifier. The DMA engine uses kDmaProcId. */
using ProcId = std::uint32_t;

/** Sequence number of a chunk local to one processor (0-based). */
using ChunkSeq = std::uint64_t;

/** Number of dynamic instructions. */
using InstrCount = std::uint64_t;

/** Pseudo processor ID used by the DMA engine when requesting commits. */
constexpr ProcId kDmaProcId = 0xFFFFu;

/** Sentinel for "no cycle" / "not scheduled". */
constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Cache line size in bytes (Table 5: 32 B lines). */
constexpr unsigned kLineBytes = 32;

/** log2 of the cache line size. */
constexpr unsigned kLineShift = 5;

/** Word size in bytes; all simulated accesses are word granular. */
constexpr unsigned kWordBytes = 8;

/** Convert a byte address to its cache-line address. */
constexpr Addr
lineOf(Addr addr)
{
    return addr >> kLineShift;
}

/** Convert a byte address to its word address. */
constexpr Addr
wordOf(Addr addr)
{
    return addr / kWordBytes;
}

} // namespace delorean

#endif // DELOREAN_COMMON_TYPES_HPP_
