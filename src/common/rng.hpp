/**
 * @file
 * Deterministic pseudo-random number generators.
 *
 * Two generators are provided:
 *  - SplitMix64: tiny, used for seeding and hashing.
 *  - Xoshiro256ss: the workhorse generator for workload generation.
 *
 * Both are value types with trivially copyable state so that a thread
 * context (which embeds its RNG) can be checkpointed and restored on a
 * chunk squash by plain assignment.
 */

#ifndef DELOREAN_COMMON_RNG_HPP_
#define DELOREAN_COMMON_RNG_HPP_

#include <cstdint>

namespace delorean
{

/** One step of the SplitMix64 sequence; also a decent 64-bit mixer. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix; used for content hashing. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    std::uint64_t s = x;
    return splitMix64(s);
}

/**
 * xoshiro256** generator. Trivially copyable; suitable for embedding in
 * checkpointable contexts.
 */
class Xoshiro256ss
{
  public:
    Xoshiro256ss() { seed(0xDE10EEA5u); }

    explicit Xoshiro256ss(std::uint64_t seed_value) { seed(seed_value); }

    /** Re-seed the full 256-bit state from a 64-bit value. */
    void
    seed(std::uint64_t seed_value)
    {
        std::uint64_t sm = seed_value;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Next 64 uniformly distributed bits. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift range reduction; bias is negligible for the
        // bounds used in this project (all far below 2^32).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability per-mille/1000. */
    bool
    chancePerMille(unsigned per_mille)
    {
        return below(1000) < per_mille;
    }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    bool operator==(const Xoshiro256ss &) const = default;

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace delorean

#endif // DELOREAN_COMMON_RNG_HPP_
