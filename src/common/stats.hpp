/**
 * @file
 * Lightweight statistics helpers: scalar counters, averages and a
 * fixed-bucket histogram. No global registry; modules own their stats
 * and expose them through accessors.
 */

#ifndef DELOREAN_COMMON_STATS_HPP_
#define DELOREAN_COMMON_STATS_HPP_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace delorean
{

/** Running mean/min/max over a stream of samples. */
class RunningStat
{
  public:
    void
    add(double sample)
    {
        ++count_;
        sum_ += sample;
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Geometric mean of a sequence of positive values. */
inline double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Histogram with uniform buckets over [lo, hi); out-of-range clamps. */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets)
        : lo_(lo), hi_(hi), counts_(buckets, 0)
    {
    }

    void
    add(double sample)
    {
        const double span = hi_ - lo_;
        long idx = static_cast<long>((sample - lo_) / span
                                     * static_cast<double>(counts_.size()));
        idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
        ++counts_[static_cast<std::size_t>(idx)];
        ++total_;
    }

    std::uint64_t total() const { return total_; }
    const std::vector<std::uint64_t> &counts() const { return counts_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace delorean

#endif // DELOREAN_COMMON_STATS_HPP_
