/**
 * @file
 * Bit-granular packed stream writer/reader.
 *
 * DeLorean's logs use odd entry widths (4-bit processor IDs, 21-bit
 * chunk distances, 1-or-12-bit variable size fields...). BitWriter and
 * BitReader pack/unpack little-endian bit streams so the measured log
 * sizes correspond exactly to the entry formats of Table 5.
 */

#ifndef DELOREAN_COMMON_BITSTREAM_HPP_
#define DELOREAN_COMMON_BITSTREAM_HPP_

#include <cassert>
#include <cstdint>
#include <vector>

namespace delorean
{

/** Append-only bit stream. Bits are packed LSB-first within bytes. */
class BitWriter
{
  public:
    /** Append the low @p width bits of @p value (width in [0, 64]). */
    void
    write(std::uint64_t value, unsigned width)
    {
        assert(width <= 64);
        for (unsigned i = 0; i < width; ++i) {
            const unsigned byte = bits_ / 8;
            const unsigned off = bits_ % 8;
            if (byte >= bytes_.size())
                bytes_.push_back(0);
            if ((value >> i) & 1u)
                bytes_[byte] |= static_cast<std::uint8_t>(1u << off);
            ++bits_;
        }
    }

    /** Total number of bits written so far. */
    std::uint64_t bitCount() const { return bits_; }

    /** Backing bytes (last byte may be partially used). */
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

    void
    clear()
    {
        bytes_.clear();
        bits_ = 0;
    }

  private:
    std::vector<std::uint8_t> bytes_;
    std::uint64_t bits_ = 0;
};

/** Sequential reader over a BitWriter's output. */
class BitReader
{
  public:
    BitReader(const std::vector<std::uint8_t> &bytes, std::uint64_t bits)
        : bytes_(&bytes), bits_(bits)
    {
    }

    explicit BitReader(const BitWriter &writer)
        : BitReader(writer.bytes(), writer.bitCount())
    {
    }

    /** Read the next @p width bits; asserts on overrun. */
    std::uint64_t
    read(unsigned width)
    {
        assert(width <= 64);
        assert(pos_ + width <= bits_);
        std::uint64_t value = 0;
        for (unsigned i = 0; i < width; ++i) {
            const unsigned byte = pos_ / 8;
            const unsigned off = pos_ % 8;
            if (((*bytes_)[byte] >> off) & 1u)
                value |= (1ull << i);
            ++pos_;
        }
        return value;
    }

    /** Bits remaining to be read. */
    std::uint64_t remaining() const { return bits_ - pos_; }

    bool atEnd() const { return pos_ == bits_; }

  private:
    const std::vector<std::uint8_t> *bytes_;
    std::uint64_t bits_;
    std::uint64_t pos_ = 0;
};

} // namespace delorean

#endif // DELOREAN_COMMON_BITSTREAM_HPP_
