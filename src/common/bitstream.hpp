/**
 * @file
 * Bit-granular packed stream writer/reader.
 *
 * DeLorean's logs use odd entry widths (4-bit processor IDs, 21-bit
 * chunk distances, 1-or-12-bit variable size fields...). BitWriter and
 * BitReader pack/unpack little-endian bit streams so the measured log
 * sizes correspond exactly to the entry formats of Table 5.
 *
 * BitWriter batches through a 64-bit accumulator: entries land in the
 * accumulator with two shifts and an OR, and whole 64-bit words spill
 * into the byte buffer on overflow — one store per eight bytes instead
 * of one branchy loop iteration per bit. The byte image is identical
 * to the historical bit-at-a-time writer (tests assert this).
 */

#ifndef DELOREAN_COMMON_BITSTREAM_HPP_
#define DELOREAN_COMMON_BITSTREAM_HPP_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/errors.hpp"

namespace delorean
{

/** Append-only bit stream. Bits are packed LSB-first within bytes. */
class BitWriter
{
  public:
    /** Append the low @p width bits of @p value (width in [0, 64]). */
    void
    write(std::uint64_t value, unsigned width)
    {
        assert(width <= 64);
        if (width == 0)
            return;
        if (width < 64)
            value &= (1ull << width) - 1;
        const unsigned fit = 64 - acc_bits_; // acc_bits_ < 64 always
        acc_ |= value << acc_bits_;
        if (width >= fit) {
            flushWord();
            acc_ = width > fit ? value >> fit : 0;
            acc_bits_ = width - fit;
        } else {
            acc_bits_ += width;
        }
        bits_ += width;
    }

    /** Total number of bits written so far. */
    std::uint64_t bitCount() const { return bits_; }

    /** Backing bytes (last byte may be partially used). */
    const std::vector<std::uint8_t> &
    bytes() const
    {
        syncTail();
        return bytes_;
    }

    /** 64-bit accumulator spills so far (hot-path observability). */
    std::uint64_t wordFlushes() const { return word_flushes_; }

    void
    clear()
    {
        bytes_.clear();
        bits_ = 0;
        acc_ = 0;
        acc_bits_ = 0;
        flushed_bytes_ = 0;
        word_flushes_ = 0;
    }

  private:
    /** Spill the full 64-bit accumulator into the byte buffer. */
    void
    flushWord()
    {
        // A prior bytes() call may already have materialized tail
        // bytes at this offset, so store by position, not push_back.
        if (bytes_.size() < flushed_bytes_ + 8)
            bytes_.resize(flushed_bytes_ + 8);
        for (unsigned i = 0; i < 8; ++i)
            bytes_[flushed_bytes_ + i] =
                static_cast<std::uint8_t>(acc_ >> (8 * i));
        flushed_bytes_ += 8;
        ++word_flushes_;
    }

    /** Materialize the pending accumulator bits (idempotent). */
    void
    syncTail() const
    {
        const std::size_t tail = (acc_bits_ + 7) / 8;
        bytes_.resize(flushed_bytes_ + tail);
        for (std::size_t i = 0; i < tail; ++i)
            bytes_[flushed_bytes_ + i] =
                static_cast<std::uint8_t>(acc_ >> (8 * i));
    }

    /// Flushed whole words, lazily extended with the accumulator tail
    /// by bytes(); mutable so readers stay const.
    mutable std::vector<std::uint8_t> bytes_;
    std::uint64_t bits_ = 0;
    std::uint64_t acc_ = 0;      ///< pending bits, LSB-first
    unsigned acc_bits_ = 0;      ///< pending bit count, always < 64
    std::size_t flushed_bytes_ = 0;
    std::uint64_t word_flushes_ = 0;
};

/**
 * Sequential reader over a BitWriter's output. Reads from a raw byte
 * span — the vector constructor is a view, so the reader can also walk
 * storage the caller does not own (an mmap'ed archive payload) without
 * copying it first. The span must hold at least ceil(bits / 8) bytes.
 */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, std::uint64_t bits)
        : data_(data), bits_(bits)
    {
    }

    BitReader(const std::vector<std::uint8_t> &bytes, std::uint64_t bits)
        : BitReader(bytes.data(), bits)
    {
    }

    explicit BitReader(const BitWriter &writer)
        : BitReader(writer.bytes(), writer.bitCount())
    {
    }

    /**
     * Read the next @p width bits. Throws BitstreamExhausted on
     * overrun — readers frequently walk attacker-controllable (i.e.
     * corrupted-file) streams, so running dry is an input error, not
     * a programming error.
     */
    std::uint64_t
    read(unsigned width)
    {
        assert(width <= 64);
        if (pos_ + width > bits_)
            throw BitstreamExhausted(
                "read of " + std::to_string(width) + " bits at position "
                + std::to_string(pos_) + " of " + std::to_string(bits_));
        return readUnchecked(width);
    }

    /**
     * Non-throwing variant: false (and @p out untouched) on overrun.
     */
    bool
    tryRead(unsigned width, std::uint64_t &out)
    {
        assert(width <= 64);
        if (pos_ + width > bits_)
            return false;
        out = readUnchecked(width);
        return true;
    }

    /** Bits remaining to be read. */
    std::uint64_t remaining() const { return bits_ - pos_; }

    bool atEnd() const { return pos_ == bits_; }

  private:
    /**
     * Byte-gathering extraction: one load per covered byte instead of
     * one branchy loop iteration per bit. Bits above the requested
     * width fall off the top of the 64-bit value or are masked, so the
     * result is identical to the historical bit-at-a-time reader.
     */
    std::uint64_t
    readUnchecked(unsigned width)
    {
        if (width == 0)
            return 0;
        std::size_t byte = static_cast<std::size_t>(pos_ >> 3);
        const unsigned off = static_cast<unsigned>(pos_ & 7);
        pos_ += width;
        std::uint64_t value = data_[byte] >> off;
        for (unsigned got = 8 - off; got < width; got += 8)
            value |= static_cast<std::uint64_t>(data_[++byte]) << got;
        if (width < 64)
            value &= (1ull << width) - 1;
        return value;
    }

    const std::uint8_t *data_;
    std::uint64_t bits_;
    std::uint64_t pos_ = 0;
};

} // namespace delorean

#endif // DELOREAN_COMMON_BITSTREAM_HPP_
