/**
 * @file
 * Typed error hierarchy for log parsing and replay.
 *
 * DeLorean's promise is that replaying a log either reproduces the
 * recorded execution or tells you precisely why it cannot. That
 * requires every failure path — a truncated file, an out-of-range
 * record field, a log that runs dry mid-replay, a replay that stalls —
 * to surface as a *typed* exception the validation layer can classify,
 * never as an assert, UB, or an unbounded simulation. The validate/
 * subsystem (DivergenceReport) maps each type to a report kind.
 */

#ifndef DELOREAN_COMMON_ERRORS_HPP_
#define DELOREAN_COMMON_ERRORS_HPP_

#include <stdexcept>
#include <string>

namespace delorean
{

/** Root of every error DeLorean raises deliberately. */
class DeloreanError : public std::runtime_error
{
  public:
    explicit DeloreanError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * A serialized recording is malformed: bad magic/version, truncated
 * stream, or a field outside the range the recorder can produce.
 * Raised by loadRecording()/validateRecording() before any replay
 * machinery touches the data.
 */
class RecordingFormatError : public DeloreanError
{
  public:
    explicit RecordingFormatError(const std::string &what)
        : DeloreanError("recording format error: " + what)
    {
    }
};

/**
 * A BitReader was asked to read past the end of its stream. Readers
 * walk deserialized (possibly corrupted) log images, so running dry
 * is a malformed-recording symptom: a RecordingFormatError, reaching
 * any handler that fences the loading/parsing layer.
 */
class BitstreamExhausted : public RecordingFormatError
{
  public:
    explicit BitstreamExhausted(const std::string &what)
        : RecordingFormatError("bit stream exhausted: " + what)
    {
    }
};

/**
 * A user-supplied configuration is invalid before any recording
 * exists: an out-of-range shard (arbiter) count, a processor count
 * the address layout cannot host, and similar construction-time
 * rejections. Distinct from RecordingFormatError, which covers
 * malformed *serialized* data — the fault-injection contract depends
 * on the loader raising only RecordingFormatError.
 */
class ConfigError : public DeloreanError
{
  public:
    explicit ConfigError(const std::string &what)
        : DeloreanError("config error: " + what)
    {
    }
};

/** Replay could not follow the recording (divergence, not a bug). */
class ReplayError : public DeloreanError
{
  public:
    explicit ReplayError(const std::string &what) : DeloreanError(what)
    {
    }
};

/** A replay cursor (PI, strata, CS, I/O, DMA) ran dry mid-replay. */
class ReplayLogExhausted : public ReplayError
{
  public:
    explicit ReplayLogExhausted(const std::string &what)
        : ReplayError("replay log exhausted: " + what)
    {
    }
};

/**
 * The event budget ran out before all threads finished — a corrupt
 * log can park the replay arbiter in a state where events keep firing
 * without progress, and the budget converts that hang into an error.
 */
class ReplayBudgetExceeded : public ReplayError
{
  public:
    explicit ReplayBudgetExceeded(const std::string &what)
        : ReplayError("replay event budget exceeded: " + what)
    {
    }
};

/** The event queue drained with threads still unfinished. */
class ReplayStalled : public ReplayError
{
  public:
    explicit ReplayStalled(const std::string &what)
        : ReplayError("replay stalled: " + what)
    {
    }
};

} // namespace delorean

#endif // DELOREAN_COMMON_ERRORS_HPP_
