/**
 * @file
 * Machine and execution-mode configuration.
 *
 * Defaults follow Table 5 of the paper (8-processor 5 GHz CMP, BulkSC
 * memory system) and the preferred per-mode DeLorean parameters.
 */

#ifndef DELOREAN_COMMON_CONFIG_HPP_
#define DELOREAN_COMMON_CONFIG_HPP_

#include <cstdint>

#include "common/types.hpp"

namespace delorean
{

/** DeLorean execution modes (Table 2). */
enum class ExecMode : std::uint8_t
{
    kOrderAndSize, ///< non-deterministic chunking, recorded commit order
    kOrderOnly,    ///< deterministic chunking, recorded commit order
    kPicoLog,      ///< deterministic chunking, predefined commit order
};

/** Short printable name of an execution mode. */
const char *execModeName(ExecMode mode);

/** Memory hierarchy latencies and geometry (Table 5, "Memory"). */
struct MemoryConfig
{
    unsigned l1SizeBytes = 32 * 1024; ///< private write-back D-L1
    unsigned l1Ways = 4;
    Cycle l1RoundTrip = 2;
    unsigned l1Mshrs = 8;

    unsigned l2SizeBytes = 8 * 1024 * 1024; ///< shared L2
    unsigned l2Ways = 8;
    Cycle l2RoundTrip = 13;
    unsigned l2Mshrs = 32;

    Cycle memRoundTrip = 300;
};

/** Processor throughput parameters (Table 5, "Processor"). */
struct ProcessorConfig
{
    double ghz = 5.0;          ///< clock frequency (for GB/day estimates)
    unsigned fetchWidth = 6;
    unsigned issueWidth = 4;
    unsigned commitWidth = 5;
    unsigned robSize = 176;
    Cycle branchPenalty = 17;
    /// Fraction (per mille) of dynamic instructions that are
    /// mispredicted branches; drives the branch-penalty component of
    /// the timing model.
    unsigned branchMissPerMille = 8;
};

/** BulkSC / chunking parameters (Table 5, "BulkSC"). */
struct BulkConfig
{
    unsigned signatureBits = 2048;      ///< R and W signature size
    Cycle commitArbitration = 30;       ///< arbiter round trip
    unsigned maxConcurrentCommits = 4;
    unsigned simultaneousChunks = 2;    ///< in-flight chunks per proc
    unsigned numArbiters = 1;
    unsigned numDirectories = 1;
    /// After this many squashes of the same chunk, halve its target
    /// size (BulkSC repeated-collision back-off, Section 4.2.3).
    unsigned collisionBackoffThreshold = 4;
    /// Arbiter disambiguation: true uses exact per-chunk line sets
    /// (idealized signatures — BulkSC reports negligible aliasing in
    /// its tuned hardware signatures); false uses the Bloom-banked
    /// Signature model including its false-positive squashes. The
    /// signature-aliasing ablation bench flips this.
    bool exactDisambiguation = true;
};

/** Full machine configuration. */
struct MachineConfig
{
    unsigned numProcs = 8;
    ProcessorConfig proc;
    MemoryConfig mem;
    BulkConfig bulk;
};

/**
 * Per-mode DeLorean configuration (Table 5, "Preferred DeLorean
 * Configurations").
 */
struct ModeConfig
{
    ExecMode mode = ExecMode::kOrderOnly;

    /// Standard chunk size in dynamic instructions (maximum size in
    /// Order&Size, where chunking is not deterministic).
    InstrCount chunkSize = 2000;

    /// Order&Size only: fraction (percent) of chunks artificially
    /// truncated to a uniform size in [1, chunkSize] to model an
    /// environment with variable-sized chunks (Section 5).
    unsigned varSizeTruncatePercent = 25;

    /// CS log entry widths. OrderOnly: 21-bit distance + 11-bit size;
    /// PicoLog: 22-bit distance + 10-bit size (Table 5). Order&Size
    /// ignores these and uses the variable 1/12-bit encoding.
    unsigned csDistanceBits = 21;
    unsigned csSizeBits = 11;

    /// PI log entry width; 4 bits encode 8 processors plus the DMA.
    unsigned piProcIdBits = 4;

    /// Stratify the PI log (Section 4.3). 0 = off; otherwise the
    /// maximum number of committed chunks per processor per stratum.
    unsigned stratifyChunksPerProc = 0;

    /** Preferred Order&Size configuration. */
    static ModeConfig
    orderAndSize()
    {
        ModeConfig c;
        c.mode = ExecMode::kOrderAndSize;
        c.chunkSize = 2000;
        return c;
    }

    /** Preferred OrderOnly configuration. */
    static ModeConfig
    orderOnly()
    {
        ModeConfig c;
        c.mode = ExecMode::kOrderOnly;
        c.chunkSize = 2000;
        c.csDistanceBits = 21;
        c.csSizeBits = 11;
        return c;
    }

    /** Preferred PicoLog configuration. */
    static ModeConfig
    picoLog()
    {
        ModeConfig c;
        c.mode = ExecMode::kPicoLog;
        c.chunkSize = 1000;
        c.csDistanceBits = 22;
        c.csSizeBits = 10;
        return c;
    }
};

} // namespace delorean

#endif // DELOREAN_COMMON_CONFIG_HPP_
