/**
 * @file
 * Bulk-style hardware address signatures.
 *
 * BulkSC (Appendix A) hash-encodes the addresses read and written by a
 * chunk into Read (R) and Write (W) signatures held in the Bulk
 * Disambiguation Module. Address disambiguation, chunk commit and
 * chunk squash are implemented with signature operations. This module
 * implements a fixed-width Bloom-filter signature (default 2 Kbit as
 * in Table 5) with k independent hash functions, plus the
 * intersection/union operations the arbiter and the Stratifier need.
 *
 * Signatures are conservative: intersects() may report a false
 * positive (causing a spurious squash, as in real Bulk hardware) but
 * never a false negative.
 *
 * Two commit-fast-path mechanisms live here:
 *  - Per-bank 64-bit summary words (the OR-fold of the bank's words).
 *    A bank whose summaries do not intersect cannot intersect at the
 *    word level, so intersects() walks the full words only on a
 *    summary hit. The fold preserves conservatism: summary reject
 *    implies word-level reject, never the other way around.
 *  - Epoch-versioned clearing. clear() bumps an epoch counter and
 *    zeroes only the summaries; stale words are lazily treated as
 *    zero by every accessor. Recycling a chunk's signatures from the
 *    freelist is O(banks) instead of O(words).
 */

#ifndef DELOREAN_SIGNATURE_SIGNATURE_HPP_
#define DELOREAN_SIGNATURE_SIGNATURE_HPP_

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>

#include "common/rng.hpp"
#include "common/types.hpp"

// Explicit SIMD lane sweeps (GNU vector extensions) for the word-level
// intersection/union hot paths. Portable fallback: the scalar loops
// below are branch-free and auto-vectorizable, so DELOREAN_NO_SIMD=
// defined (or a non-GNU compiler) only costs the explicit widening.
#if defined(__GNUC__) && !defined(DELOREAN_NO_SIMD)
#define DELOREAN_SIG_SIMD 1
#endif

// On x86-64, a 256-bit variant of the same sweeps is compiled with
// the avx2 target attribute and selected at runtime from one cached
// CPUID probe, so the binary stays runnable on pre-AVX2 machines.
// The 128-bit path above remains the dispatch fallback.
#if DELOREAN_SIG_SIMD && defined(__x86_64__)
#define DELOREAN_SIG_AVX2 1
#endif

namespace delorean
{

#if DELOREAN_SIG_AVX2
namespace detail
{
/** One-time CPUID probe backing the 256-bit sweep dispatch. */
inline bool
sigHasAvx2()
{
    static const bool have = __builtin_cpu_supports("avx2") != 0;
    return have;
}
} // namespace detail
#endif

/**
 * Fixed-capacity banked signature over cache-line addresses.
 *
 * Bulk's hardware does not use random Bloom hashes: the line address
 * is permuted and sliced into bit-fields, each selecting one bit in a
 * separate bank. Two signatures conflict only if they intersect in
 * EVERY bank. Because the high-order slices change slowly under
 * spatially local access patterns, the high banks stay sparse even
 * for 2000-instruction chunks, keeping the false-conflict rate low —
 * random hashing would saturate 2 Kbits long before that.
 *
 * The bit width is a compile-time template parameter so that the
 * micro-benchmarks can sweep 512/1024/2048-bit signatures; Signature
 * (the 2048-bit instantiation) is the one the machine uses.
 */
template <unsigned BitsParam>
class SignatureT
{
  public:
    static constexpr unsigned kBits = BitsParam;
    static constexpr unsigned kWords = kBits / 64;
    static constexpr unsigned kBanks = 4;
    static constexpr unsigned kBankBits = kBits / kBanks;
    static constexpr unsigned kBankWords = kWords / kBanks;
    /// Address bit-field offsets, one per bank (Bulk permutations).
    static constexpr unsigned kShifts[kBanks] = {0, 4, 8, 12};

    static_assert(kBits % (64 * kBanks) == 0 && kBits >= 64 * kBanks,
                  "signature banks must be a multiple of 64 bits");

    /** Insert a cache-line address (one bit per bank). */
    void
    insert(Addr line)
    {
        for (unsigned b = 0; b < kBanks; ++b) {
            const unsigned bit = bankBit(line, b);
            const std::uint64_t mask = 1ull << (bit % 64);
            orWord(b * kBankWords + bit / 64, mask);
            summary_[b] |= mask;
        }
    }

    /** Conservative membership test for a cache-line address. */
    bool
    mayContain(Addr line) const
    {
        for (unsigned b = 0; b < kBanks; ++b) {
            const unsigned bit = bankBit(line, b);
            const std::uint64_t mask = 1ull << (bit % 64);
            // Summary fast reject: no word in the bank has this bit
            // position set, so the exact word cannot either.
            if (!(summary_[b] & mask))
                return false;
            if (!(word(b * kBankWords + bit / 64) & mask))
                return false;
        }
        return true;
    }

    /**
     * Summary-level filter: true if the per-bank summaries intersect
     * in every bank. A false return guarantees intersects() is false;
     * a true return means the full words must be walked.
     */
    bool
    summaryIntersects(const SignatureT &other) const
    {
        for (unsigned b = 0; b < kBanks; ++b)
            if (!(summary_[b] & other.summary_[b]))
                return false;
        return true;
    }

    /**
     * Word-level intersection test (no summary filter). The per-bank
     * sweep is branch-free — every lane computes
     * masked-self AND masked-other and OR-folds into an accumulator —
     * so the compiler vectorizes the kBankWords lanes (8 x 64-bit for
     * the 2 Kbit signature) instead of taking a data-dependent branch
     * per word. Early exit happens only at bank granularity, where a
     * miss is decisive anyway.
     */
    bool
    intersectsWords(const SignatureT &other) const
    {
#if DELOREAN_SIG_AVX2
        // 256-bit lanes when the CPU has them: the probe is cached,
        // so steady state pays one predicted branch per call.
        if constexpr (kBankWords % kWideLanes == 0) {
            if (detail::sigHasAvx2())
                return intersectsWordsAvx2(other);
        }
#endif
#if DELOREAN_SIG_SIMD
        if constexpr (kBankWords % kSimdLanes == 0) {
            for (unsigned b = 0; b < kBanks; ++b) {
                V2u64 acc{};
                for (unsigned i = 0; i < kBankWords; i += kSimdLanes) {
                    const unsigned w = b * kBankWords + i;
                    acc |= maskedPair(w) & other.maskedPair(w);
                }
                if ((acc[0] | acc[1]) == 0)
                    return false;
            }
            return true;
        }
#endif
        for (unsigned b = 0; b < kBanks; ++b) {
            std::uint64_t hit = 0;
            for (unsigned i = 0; i < kBankWords; ++i)
                hit |= maskedWord(b * kBankWords + i)
                       & other.maskedWord(b * kBankWords + i);
            if (hit == 0)
                return false;
        }
        return true;
    }

    /** True if the signatures intersect in every bank. */
    bool
    intersects(const SignatureT &other) const
    {
        return summaryIntersects(other) && intersectsWords(other);
    }

    /**
     * Bitwise OR @p other into this signature. Banks empty in @p other
     * are skipped via the summary; a touched bank is merged with a
     * branch-free lane sweep (unconditional word store + epoch-tag
     * revive) the compiler can vectorize, instead of a liveness branch
     * per word.
     */
    void
    unionWith(const SignatureT &other)
    {
        for (unsigned b = 0; b < kBanks; ++b) {
            if (!other.summary_[b])
                continue; // whole bank empty in other
            summary_[b] |= other.summary_[b];
#if DELOREAN_SIG_AVX2
            if constexpr (kBankWords % kWideLanes == 0) {
                if (detail::sigHasAvx2()) {
                    unionBankAvx2(other, b);
                    continue;
                }
            }
#endif
#if DELOREAN_SIG_SIMD
            if constexpr (kBankWords % kSimdLanes == 0) {
                const V2u32 cur = {epoch_, epoch_};
                for (unsigned i = 0; i < kBankWords; i += kSimdLanes) {
                    const unsigned w = b * kBankWords + i;
                    const V2u64 merged =
                        maskedPair(w) | other.maskedPair(w);
                    std::memcpy(words_.data() + w, &merged,
                                sizeof merged);
                    std::memcpy(word_epoch_.data() + w, &cur,
                                sizeof cur);
                }
                continue;
            }
#endif
            for (unsigned i = 0; i < kBankWords; ++i) {
                const unsigned w = b * kBankWords + i;
                words_[w] = maskedWord(w) | other.maskedWord(w);
                word_epoch_[w] = epoch_;
            }
        }
    }

    /**
     * Epoch clear: O(banks), not O(words). Words written under an
     * older epoch read back as zero until re-written.
     */
    void
    clear()
    {
        summary_.fill(0);
        if (++epoch_ == 0) {
            // Epoch counter wrapped: genuinely reset so that stale
            // words from 2^32 clears ago cannot resurface.
            words_.fill(0);
            word_epoch_.fill(0);
        }
    }

    /** True if no bit is set. */
    bool
    empty() const
    {
        for (const auto s : summary_)
            if (s)
                return false;
        return true;
    }

    /**
     * Number of set bits (occupancy). One flat branch-free pass of
     * masked-word popcounts — no per-bank summary branch, so the
     * whole signature is a fixed-length reduction.
     */
    unsigned
    popCount() const
    {
        unsigned count = 0;
        for (unsigned i = 0; i < kWords; ++i)
            count +=
                static_cast<unsigned>(std::popcount(maskedWord(i)));
        return count;
    }

    /**
     * TEST ONLY: jump the epoch counter to @p epoch so the wraparound
     * hard reset in clear() can be exercised without 2^32 clears.
     * Summaries are rebuilt from the words live under @p epoch so the
     * summary/word invariant holds for any forced value.
     */
    void
    forceEpochForTest(std::uint32_t epoch)
    {
        epoch_ = epoch;
        summary_.fill(0);
        for (unsigned b = 0; b < kBanks; ++b)
            for (unsigned i = 0; i < kBankWords; ++i)
                summary_[b] |= word(b * kBankWords + i);
    }

    /** Logical equality (epoch representation is ignored). */
    bool
    operator==(const SignatureT &other) const
    {
        for (unsigned i = 0; i < kWords; ++i)
            if (word(i) != other.word(i))
                return false;
        return true;
    }

    /**
     * Address-shard index of @p line for the sharded arbiter
     * hierarchy: the bank-0 signature hash truncated to the shard
     * count. @p shards must be a power of two in [1, 64]. Keying the
     * shard off the same permutation family as the signature banks
     * keeps shard membership consistent with what the signatures
     * encode: two lines that could alias in bank 0 land in the same
     * shard.
     */
    static unsigned
    shardOf(Addr line, unsigned shards)
    {
        return static_cast<unsigned>(
            mix64((line >> kShifts[0]) * 0x9E3779B97F4A7C15ull)
            & (shards - 1));
    }

  private:
#if DELOREAN_SIG_SIMD
    /// 128-bit lanes: the baseline vector width on both x86-64 (SSE2)
    /// and aarch64 (NEON), so no arch flags are needed and no ABI
    /// warnings fire for by-value vector returns.
    static constexpr unsigned kSimdLanes = 2;
    using V2u64 = std::uint64_t __attribute__((vector_size(16)));
    using V2u32 = std::uint32_t __attribute__((vector_size(8)));
    using V2i64 = std::int64_t __attribute__((vector_size(16)));

    /**
     * Two consecutive maskedWord() lanes as one vector: unaligned
     * loads of the words and their epoch tags, a lane-wise compare of
     * the tags against the live epoch (yielding all-ones/all-zero
     * 32-bit lanes, sign-extended to 64), and a mask AND. The compare
     * replaces the data-dependent epoch branches with one SIMD op.
     */
    V2u64
    maskedPair(unsigned i) const
    {
        V2u64 w;
        std::memcpy(&w, words_.data() + i, sizeof w);
        V2u32 e;
        std::memcpy(&e, word_epoch_.data() + i, sizeof e);
        const V2u32 cur = {epoch_, epoch_};
        const V2i64 live = __builtin_convertvector(e == cur, V2i64);
        return w & reinterpret_cast<const V2u64 &>(live);
    }
#endif

#if DELOREAN_SIG_AVX2
    /// 256-bit lane count; a 2 Kbit signature's 8-word bank is two
    /// sweep steps instead of four.
    static constexpr unsigned kWideLanes = 4;
    using V4u64 = std::uint64_t __attribute__((vector_size(32)));
    using V4u32 = std::uint32_t __attribute__((vector_size(16)));
    using V4i64 = std::int64_t __attribute__((vector_size(32)));

    /**
     * Four consecutive maskedWord() lanes as one 256-bit vector; the
     * same load / epoch-compare / sign-extend / AND shape as
     * maskedPair(). Everything 256-bit-valued stays inside
     * avx2-target functions so by-value vector passing never crosses
     * an ABI boundary into baseline code.
     */
    __attribute__((target("avx2"))) V4u64
    maskedQuad(unsigned i) const
    {
        V4u64 w;
        std::memcpy(&w, words_.data() + i, sizeof w);
        V4u32 e;
        std::memcpy(&e, word_epoch_.data() + i, sizeof e);
        const V4u32 cur = {epoch_, epoch_, epoch_, epoch_};
        const V4i64 live = __builtin_convertvector(e == cur, V4i64);
        return w & reinterpret_cast<const V4u64 &>(live);
    }

    /** intersectsWords(), 256 bits per step. */
    __attribute__((target("avx2"))) bool
    intersectsWordsAvx2(const SignatureT &other) const
    {
        for (unsigned b = 0; b < kBanks; ++b) {
            V4u64 acc{};
            for (unsigned i = 0; i < kBankWords; i += kWideLanes) {
                const unsigned w = b * kBankWords + i;
                acc |= maskedQuad(w) & other.maskedQuad(w);
            }
            if ((acc[0] | acc[1] | acc[2] | acc[3]) == 0)
                return false;
        }
        return true;
    }

    /** unionWith()'s per-bank merge, 256 bits per step. */
    __attribute__((target("avx2"))) void
    unionBankAvx2(const SignatureT &other, unsigned b)
    {
        const V4u32 cur = {epoch_, epoch_, epoch_, epoch_};
        for (unsigned i = 0; i < kBankWords; i += kWideLanes) {
            const unsigned w = b * kBankWords + i;
            const V4u64 merged = maskedQuad(w) | other.maskedQuad(w);
            std::memcpy(words_.data() + w, &merged, sizeof merged);
            std::memcpy(word_epoch_.data() + w, &cur, sizeof cur);
        }
    }
#endif

    /** Word @p i with stale (pre-clear) content read as zero. */
    std::uint64_t
    word(unsigned i) const
    {
        return word_epoch_[i] == epoch_ ? words_[i] : 0;
    }

    /**
     * Branch-free variant of word(): the epoch compare becomes an
     * all-ones/all-zero mask, keeping lane sweeps vectorizable.
     */
    std::uint64_t
    maskedWord(unsigned i) const
    {
        return words_[i]
               & static_cast<std::uint64_t>(
                     -static_cast<std::int64_t>(word_epoch_[i] == epoch_));
    }

    /** OR @p mask into word @p i, reviving it if stale. */
    void
    orWord(unsigned i, std::uint64_t mask)
    {
        if (word_epoch_[i] == epoch_) {
            words_[i] |= mask;
        } else {
            word_epoch_[i] = epoch_;
            words_[i] = mask;
        }
    }

    /**
     * Bit index within bank @p b for line address @p line: a folded
     * bit-field of the address starting at the bank's shift.
     */
    static unsigned
    bankBit(Addr line, unsigned b)
    {
        const Addr field = line >> kShifts[b];
        // Hash the field value: equal fields (spatial locality) still
        // map to one bit, while distinct fields — e.g. different
        // processors' private regions — spread uniformly instead of
        // aliasing through truncation.
        return static_cast<unsigned>(
            mix64(field * 0x9E3779B97F4A7C15ull + b) & (kBankBits - 1));
    }

    std::array<std::uint64_t, kWords> words_{};
    /// Per-word epoch tags; a word is live only when its tag matches.
    std::array<std::uint32_t, kWords> word_epoch_{};
    /// Per-bank OR-fold of the bank's live words.
    std::array<std::uint64_t, kBanks> summary_{};
    std::uint32_t epoch_ = 0;
};

/** The machine's signature width (Table 5: 2 Kbit). */
using Signature = SignatureT<2048>;

/** A chunk's pair of Read/Write signatures. */
struct SignaturePair
{
    Signature read;
    Signature write;

    void
    clear()
    {
        read.clear();
        write.clear();
    }

    /**
     * Conflict test used at commit: committing chunk's W signature
     * against a running chunk's R and W signatures.
     */
    bool
    conflictsWithWrite(const Signature &committing_write) const
    {
        return committing_write.intersects(read)
               || committing_write.intersects(write);
    }
};

} // namespace delorean

#endif // DELOREAN_SIGNATURE_SIGNATURE_HPP_
