/**
 * @file
 * Bulk-style hardware address signatures.
 *
 * BulkSC (Appendix A) hash-encodes the addresses read and written by a
 * chunk into Read (R) and Write (W) signatures held in the Bulk
 * Disambiguation Module. Address disambiguation, chunk commit and
 * chunk squash are implemented with signature operations. This module
 * implements a fixed-width Bloom-filter signature (default 2 Kbit as
 * in Table 5) with k independent hash functions, plus the
 * intersection/union operations the arbiter and the Stratifier need.
 *
 * Signatures are conservative: intersects() may report a false
 * positive (causing a spurious squash, as in real Bulk hardware) but
 * never a false negative.
 */

#ifndef DELOREAN_SIGNATURE_SIGNATURE_HPP_
#define DELOREAN_SIGNATURE_SIGNATURE_HPP_

#include <array>
#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace delorean
{

/**
 * Fixed-capacity banked signature over cache-line addresses.
 *
 * Bulk's hardware does not use random Bloom hashes: the line address
 * is permuted and sliced into bit-fields, each selecting one bit in a
 * separate bank. Two signatures conflict only if they intersect in
 * EVERY bank. Because the high-order slices change slowly under
 * spatially local access patterns, the high banks stay sparse even
 * for 2000-instruction chunks, keeping the false-conflict rate low —
 * random hashing would saturate 2 Kbits long before that.
 *
 * The bit width is a compile-time template parameter so that the
 * micro-benchmarks can sweep 512/1024/2048-bit signatures; Signature
 * (the 2048-bit instantiation) is the one the machine uses.
 */
template <unsigned BitsParam>
class SignatureT
{
  public:
    static constexpr unsigned kBits = BitsParam;
    static constexpr unsigned kWords = kBits / 64;
    static constexpr unsigned kBanks = 4;
    static constexpr unsigned kBankBits = kBits / kBanks;
    static constexpr unsigned kBankWords = kWords / kBanks;
    /// Address bit-field offsets, one per bank (Bulk permutations).
    static constexpr unsigned kShifts[kBanks] = {0, 4, 8, 12};

    static_assert(kBits % (64 * kBanks) == 0 && kBits >= 64 * kBanks,
                  "signature banks must be a multiple of 64 bits");

    /** Insert a cache-line address (one bit per bank). */
    void
    insert(Addr line)
    {
        for (unsigned b = 0; b < kBanks; ++b) {
            const unsigned bit = bankBit(line, b);
            words_[b * kBankWords + bit / 64] |= (1ull << (bit % 64));
        }
    }

    /** Conservative membership test for a cache-line address. */
    bool
    mayContain(Addr line) const
    {
        for (unsigned b = 0; b < kBanks; ++b) {
            const unsigned bit = bankBit(line, b);
            if (!((words_[b * kBankWords + bit / 64] >> (bit % 64)) & 1ull))
                return false;
        }
        return true;
    }

    /** True if the signatures intersect in every bank. */
    bool
    intersects(const SignatureT &other) const
    {
        for (unsigned b = 0; b < kBanks; ++b) {
            bool bank_hit = false;
            for (unsigned i = 0; i < kBankWords; ++i) {
                if (words_[b * kBankWords + i]
                    & other.words_[b * kBankWords + i]) {
                    bank_hit = true;
                    break;
                }
            }
            if (!bank_hit)
                return false;
        }
        return true;
    }

    /** Bitwise OR @p other into this signature. */
    void
    unionWith(const SignatureT &other)
    {
        for (unsigned i = 0; i < kWords; ++i)
            words_[i] |= other.words_[i];
    }

    /** Clear all bits. */
    void clear() { words_.fill(0); }

    /** True if no bit is set. */
    bool
    empty() const
    {
        for (const auto w : words_)
            if (w)
                return false;
        return true;
    }

    /** Number of set bits (occupancy). */
    unsigned
    popCount() const
    {
        unsigned count = 0;
        for (const auto w : words_)
            count += static_cast<unsigned>(__builtin_popcountll(w));
        return count;
    }

    bool operator==(const SignatureT &) const = default;

  private:
    /**
     * Bit index within bank @p b for line address @p line: a folded
     * bit-field of the address starting at the bank's shift.
     */
    static unsigned
    bankBit(Addr line, unsigned b)
    {
        const Addr field = line >> kShifts[b];
        // Hash the field value: equal fields (spatial locality) still
        // map to one bit, while distinct fields — e.g. different
        // processors' private regions — spread uniformly instead of
        // aliasing through truncation.
        return static_cast<unsigned>(
            mix64(field * 0x9E3779B97F4A7C15ull + b) & (kBankBits - 1));
    }

    std::array<std::uint64_t, kWords> words_{};
};

/** The machine's signature width (Table 5: 2 Kbit). */
using Signature = SignatureT<2048>;

/** A chunk's pair of Read/Write signatures. */
struct SignaturePair
{
    Signature read;
    Signature write;

    void
    clear()
    {
        read.clear();
        write.clear();
    }

    /**
     * Conflict test used at commit: committing chunk's W signature
     * against a running chunk's R and W signatures.
     */
    bool
    conflictsWithWrite(const Signature &committing_write) const
    {
        return committing_write.intersects(read)
               || committing_write.intersects(write);
    }
};

} // namespace delorean

#endif // DELOREAN_SIGNATURE_SIGNATURE_HPP_
