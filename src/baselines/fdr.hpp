/**
 * @file
 * FDR-style memory-race recorder (Xu, Bodik, Hill — ISCA'03).
 *
 * Observes the global access order of an SC machine and logs
 * cross-processor dependences into a Memory Races Log, applying a
 * hardware-style Netzer transitive reduction: each processor keeps a
 * vector of the last source instruction counts it has (transitively)
 * ordered behind, and a dependence already implied by that vector is
 * not logged. Write sources additionally piggyback the writer's
 * vector snapshot (stored per line), which captures most of the
 * transitivity of Figure 1(a); read-source (WAR) dependences are
 * reduced pairwise only. This is conservative: it may log slightly
 * more than an optimal Netzer reduction but never less.
 *
 * Used by bench/baseline_logsize and the Figure 6-8 reference lines.
 */

#ifndef DELOREAN_BASELINES_FDR_HPP_
#define DELOREAN_BASELINES_FDR_HPP_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/access_order.hpp"

namespace delorean
{

/** One logged race: source instruction happens-before destination. */
struct RaceEntry
{
    ProcId srcProc = 0;
    InstrCount srcInstr = 0;
    ProcId dstProc = 0;
    InstrCount dstInstr = 0;
};

/** FDR Memory Races Log builder. */
class FdrRecorder : public AccessSink
{
  public:
    explicit FdrRecorder(unsigned num_procs);

    void onAccess(const AccessRecord &record) override;

    const std::vector<RaceEntry> &entries() const { return entries_; }

    /** Raw log size: two (procID, instr-count) pairs per entry. */
    std::uint64_t sizeBits() const;

    /** Delta-encoded packed image, for LZ77 measurement. */
    std::vector<std::uint8_t> packedBytes() const;

    /** Dependences observed before reduction (for tests/stats). */
    std::uint64_t observedDependences() const { return observed_; }

  protected:
    struct LineState
    {
        ProcId writer = kDmaProcId; ///< none yet
        InstrCount writerInstr = 0;
        std::vector<InstrCount> writerVc; ///< writer's VC snapshot
        std::vector<InstrCount> readerInstr; ///< last read per proc
        std::vector<bool> readSinceWrite;
    };

    /**
     * Process the dependence (src,src_instr) -> (dst,dst_instr); logs
     * it unless the destination's vector already implies it.
     * @param src_vc optional source vector snapshot to merge
     */
    void dependence(ProcId src, InstrCount src_instr, ProcId dst,
                    InstrCount dst_instr,
                    const std::vector<InstrCount> *src_vc);

    /** Hook for subclasses (RTR) to customize the logged entry. */
    virtual void
    log(const RaceEntry &entry)
    {
        entries_.push_back(entry);
    }

    unsigned numProcs() const { return num_procs_; }

    unsigned num_procs_;
    std::unordered_map<Addr, LineState> lines_;
    std::vector<std::vector<InstrCount>> vc_; ///< per-proc vector clock
    std::vector<RaceEntry> entries_;
    std::uint64_t observed_ = 0;
};

} // namespace delorean

#endif // DELOREAN_BASELINES_FDR_HPP_
