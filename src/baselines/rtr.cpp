#include "baselines/rtr.hpp"

#include "common/bitstream.hpp"

namespace delorean
{

RtrRecorder::RtrRecorder(unsigned num_procs)
    : FdrRecorder(num_procs), last_instr_(num_procs, 0)
{
}

void
RtrRecorder::onAccess(const AccessRecord &record)
{
    last_instr_[record.proc] = record.instrIndex;
    FdrRecorder::onAccess(record);
}

void
RtrRecorder::log(const RaceEntry &entry)
{
    // Regulation: replace the source with the strictest sound
    // artificial dependence — the source processor's most recent
    // instruction, which in the observed global order has already
    // completed before the destination access.
    RaceEntry reg = entry;
    reg.srcInstr = std::max(reg.srcInstr, lastInstr(entry.srcProc));
    vc_[reg.dstProc][reg.srcProc] =
        std::max(vc_[reg.dstProc][reg.srcProc], reg.srcInstr);
    entries_.push_back(reg); // keep the raw stream too (tests/stats)

    // Vectorization: extend a run of recurring dependences between the
    // same processor pair with constant strides.
    if (open_run_) {
        VectorEntry &run = vectors_.back();
        if (run.srcProc == reg.srcProc && run.dstProc == reg.dstProc) {
            const std::int64_t sstride =
                static_cast<std::int64_t>(reg.srcInstr)
                - static_cast<std::int64_t>(last_raw_.srcInstr);
            const std::int64_t dstride =
                static_cast<std::int64_t>(reg.dstInstr)
                - static_cast<std::int64_t>(last_raw_.dstInstr);
            if (run.count == 1) {
                run.srcStride = sstride;
                run.dstStride = dstride;
                ++run.count;
                last_raw_ = reg;
                return;
            }
            if (run.srcStride == sstride && run.dstStride == dstride
                && run.count < 0xFFFF) {
                ++run.count;
                last_raw_ = reg;
                return;
            }
        }
    }
    VectorEntry fresh;
    fresh.srcProc = reg.srcProc;
    fresh.dstProc = reg.dstProc;
    fresh.srcStart = reg.srcInstr;
    fresh.dstStart = reg.dstInstr;
    vectors_.push_back(fresh);
    open_run_ = true;
    last_raw_ = reg;
}

void
RtrRecorder::finalize()
{
    open_run_ = false;
}

std::uint64_t
RtrRecorder::vectorSizeBits() const
{
    std::uint64_t bits = 0;
    for (const auto &v : vectors_)
        bits += (v.count == 1) ? (2 * (4 + 32)) : (8 + 64 + 32 + 16);
    return bits;
}

std::vector<std::uint8_t>
RtrRecorder::vectorPackedBytes() const
{
    BitWriter writer;
    std::vector<InstrCount> last_src(num_procs_, 0);
    std::vector<InstrCount> last_dst(num_procs_, 0);
    for (const auto &v : vectors_) {
        writer.write(v.srcProc, 4);
        writer.write(v.dstProc, 4);
        writer.write(v.srcStart - last_src[v.srcProc], 32);
        writer.write(v.dstStart - last_dst[v.dstProc], 32);
        writer.write(v.count > 1 ? 1 : 0, 1);
        if (v.count > 1) {
            writer.write(static_cast<std::uint64_t>(v.srcStride), 16);
            writer.write(static_cast<std::uint64_t>(v.dstStride), 16);
            writer.write(v.count, 16);
        }
        last_src[v.srcProc] = v.srcStart;
        last_dst[v.dstProc] = v.dstStart;
    }
    return writer.bytes();
}

} // namespace delorean
