/**
 * @file
 * Basic RTR recorder (Xu, Hill, Bodik — ASPLOS'06).
 *
 * The Regulated Transitive Reduction improves on FDR in two ways the
 * paper's Section 2.1 describes:
 *  1. It *regulates*: artificial, stricter dependences are introduced
 *     so that Netzer reduction can drop others (Figure 1(b)). We model
 *     regulation by snapping the source of each logged dependence
 *     forward to a "stricter" recent point of the source processor
 *     (its latest instruction ordered before the destination), which
 *     subsumes later dependences from the same source region.
 *  2. It compacts recurring dependences with a *vector* notation:
 *     consecutive logged entries between the same processor pair whose
 *     source and destination instruction counts advance by constant
 *     strides are merged into one vectorized entry.
 *
 * The result is the Memory Races Log of "Basic RTR" (no TSO support),
 * whose compressed size the paper estimates at ~1 byte per processor
 * per kilo-instruction — the reference line in Figures 6-8.
 */

#ifndef DELOREAN_BASELINES_RTR_HPP_
#define DELOREAN_BASELINES_RTR_HPP_

#include "baselines/fdr.hpp"

namespace delorean
{

/** A vectorized run of races between one processor pair. */
struct VectorEntry
{
    ProcId srcProc = 0;
    ProcId dstProc = 0;
    InstrCount srcStart = 0;
    InstrCount dstStart = 0;
    std::int64_t srcStride = 0;
    std::int64_t dstStride = 0;
    std::uint32_t count = 1;
};

/** Basic RTR: regulated reduction + vectorized entries. */
class RtrRecorder : public FdrRecorder
{
  public:
    explicit RtrRecorder(unsigned num_procs);

    void onAccess(const AccessRecord &record) override;

    /** Finish pending run-building; call before reading sizes. */
    void finalize();

    const std::vector<VectorEntry> &vectorEntries() const
    {
        return vectors_;
    }

    /** Raw size with the vector representation. */
    std::uint64_t vectorSizeBits() const;

    /** Packed image of the vectorized log for LZ77 measurement. */
    std::vector<std::uint8_t> vectorPackedBytes() const;

  protected:
    void log(const RaceEntry &entry) override;

    /** Most recent instruction index observed from @p p. */
    InstrCount lastInstr(ProcId p) const { return last_instr_[p]; }

  private:
    std::vector<InstrCount> last_instr_;
    std::vector<VectorEntry> vectors_;
    bool open_run_ = false;
    RaceEntry last_raw_{};
};

} // namespace delorean

#endif // DELOREAN_BASELINES_RTR_HPP_
