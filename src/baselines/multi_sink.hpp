/**
 * @file
 * Fan-out AccessSink: feeds one SC access stream to several baseline
 * recorders in a single executor pass.
 */

#ifndef DELOREAN_BASELINES_MULTI_SINK_HPP_
#define DELOREAN_BASELINES_MULTI_SINK_HPP_

#include <vector>

#include "sim/access_order.hpp"

namespace delorean
{

/** Broadcasts each access to every registered sink. */
class MultiSink : public AccessSink
{
  public:
    void add(AccessSink *sink) { sinks_.push_back(sink); }

    void
    onAccess(const AccessRecord &record) override
    {
        for (AccessSink *s : sinks_)
            s->onAccess(record);
    }

  private:
    std::vector<AccessSink *> sinks_;
};

} // namespace delorean

#endif // DELOREAN_BASELINES_MULTI_SINK_HPP_
