/**
 * @file
 * Strata recorder (Narayanasamy, Pereira, Calder — ASPLOS'06).
 *
 * Instead of logging individual dependences, Strata logs *strata*:
 * each log entry is a vector with one counter per processor giving the
 * number of memory operations that processor issued since the last
 * stratum. A stratum is logged immediately before the second access of
 * an inter-processor dependence is issued (Figure 1(c)); dependences
 * whose two references already fall in different stratum regions need
 * no new stratum. WAR dependences can optionally be ignored, trading
 * log size for multiple re-executions at replay time.
 */

#ifndef DELOREAN_BASELINES_STRATA_HPP_
#define DELOREAN_BASELINES_STRATA_HPP_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/access_order.hpp"

namespace delorean
{

/** Strata log builder over the global SC access order. */
class StrataRecorder : public AccessSink
{
  public:
    /**
     * @param num_procs processor count (stratum vector width)
     * @param record_war false drops WAR dependences from the log
     */
    StrataRecorder(unsigned num_procs, bool record_war);

    void onAccess(const AccessRecord &record) override;

    /** Number of strata logged. */
    std::size_t strataCount() const { return strata_.size(); }

    /**
     * Raw size: one memory-op counter per processor per stratum; the
     * counters are 20-bit deltas (ample for the evaluated runs).
     */
    std::uint64_t sizeBits() const;

    /** Packed image for LZ77 measurement. */
    std::vector<std::uint8_t> packedBytes() const;

  private:
    struct LineState
    {
        std::uint64_t epoch = 0; ///< stratum epoch of the masks below
        std::uint32_t readers = 0;
        std::uint32_t writers = 0;
    };

    /** Masks are stale if recorded before the current stratum. */
    void refresh(LineState &ls);

    void cutStratum();

    unsigned num_procs_;
    bool record_war_;
    std::uint64_t epoch_ = 1;
    std::vector<InstrCount> memops_; ///< per-proc memop counts (total)
    std::vector<InstrCount> last_cut_; ///< memop counts at last stratum
    std::unordered_map<Addr, LineState> lines_;
    std::vector<std::vector<std::uint32_t>> strata_; ///< delta vectors
};

} // namespace delorean

#endif // DELOREAN_BASELINES_STRATA_HPP_
