#include "baselines/fdr.hpp"

#include <algorithm>

#include "common/bitstream.hpp"

namespace delorean
{

FdrRecorder::FdrRecorder(unsigned num_procs)
    : num_procs_(num_procs),
      vc_(num_procs, std::vector<InstrCount>(num_procs, 0))
{
}

void
FdrRecorder::dependence(ProcId src, InstrCount src_instr, ProcId dst,
                        InstrCount dst_instr,
                        const std::vector<InstrCount> *src_vc)
{
    if (src == dst)
        return;
    ++observed_;
    std::vector<InstrCount> &dvc = vc_[dst];
    if (dvc[src] >= src_instr)
        return; // transitively implied

    log(RaceEntry{src, src_instr, dst, dst_instr});
    dvc[src] = std::max(dvc[src], src_instr);
    if (src_vc) {
        // Replay orders dst behind everything the source had seen.
        for (ProcId q = 0; q < num_procs_; ++q)
            dvc[q] = std::max(dvc[q], (*src_vc)[q]);
    }
}

void
FdrRecorder::onAccess(const AccessRecord &rec)
{
    LineState &ls = lines_[rec.line];
    if (ls.readerInstr.empty()) {
        ls.readerInstr.assign(num_procs_, 0);
        ls.readSinceWrite.assign(num_procs_, false);
        ls.writerVc.assign(num_procs_, 0);
    }

    // RAW / WAW from the last writer.
    const bool has_writer = ls.writer != kDmaProcId;
    if (has_writer && ls.writer != rec.proc) {
        dependence(ls.writer, ls.writerInstr, rec.proc, rec.instrIndex,
                   &ls.writerVc);
    }

    if (rec.isWrite) {
        // WAR from readers since the previous write.
        for (ProcId q = 0; q < num_procs_; ++q) {
            if (q != rec.proc && ls.readSinceWrite[q])
                dependence(q, ls.readerInstr[q], rec.proc, rec.instrIndex,
                           nullptr);
        }
        ls.writer = rec.proc;
        ls.writerInstr = rec.instrIndex;
        ls.writerVc = vc_[rec.proc];
        ls.writerVc[rec.proc] = rec.instrIndex;
        std::fill(ls.readSinceWrite.begin(), ls.readSinceWrite.end(),
                  false);
    }
    if (rec.isRead) {
        ls.readerInstr[rec.proc] = rec.instrIndex;
        ls.readSinceWrite[rec.proc] = true;
    }
}

std::uint64_t
FdrRecorder::sizeBits() const
{
    // Two (procID, 32-bit instruction count) pairs per entry.
    const unsigned proc_bits = 4;
    return static_cast<std::uint64_t>(entries_.size())
           * 2 * (proc_bits + 32);
}

std::vector<std::uint8_t>
FdrRecorder::packedBytes() const
{
    BitWriter writer;
    std::vector<InstrCount> last_src(num_procs_, 0);
    std::vector<InstrCount> last_dst(num_procs_, 0);
    for (const auto &e : entries_) {
        writer.write(e.srcProc, 4);
        writer.write(e.dstProc, 4);
        // Delta-encode instruction counts per processor (FDR compresses
        // its log; deltas make LZ77 effective).
        writer.write(e.srcInstr - last_src[e.srcProc], 32);
        writer.write(e.dstInstr - last_dst[e.dstProc], 32);
        last_src[e.srcProc] = e.srcInstr;
        last_dst[e.dstProc] = e.dstInstr;
    }
    return writer.bytes();
}

} // namespace delorean
