#include "baselines/strata.hpp"

#include "common/bitstream.hpp"

namespace delorean
{

StrataRecorder::StrataRecorder(unsigned num_procs, bool record_war)
    : num_procs_(num_procs),
      record_war_(record_war),
      memops_(num_procs, 0),
      last_cut_(num_procs, 0)
{
}

void
StrataRecorder::refresh(LineState &ls)
{
    if (ls.epoch != epoch_) {
        ls.epoch = epoch_;
        ls.readers = 0;
        ls.writers = 0;
    }
}

void
StrataRecorder::cutStratum()
{
    std::vector<std::uint32_t> counts(num_procs_);
    for (ProcId p = 0; p < num_procs_; ++p) {
        counts[p] = static_cast<std::uint32_t>(memops_[p] - last_cut_[p]);
        last_cut_[p] = memops_[p];
    }
    strata_.push_back(std::move(counts));
    ++epoch_; // invalidates every line's in-stratum masks
}

void
StrataRecorder::onAccess(const AccessRecord &rec)
{
    LineState &ls = lines_[rec.line];
    refresh(ls);

    const std::uint32_t self = 1u << rec.proc;
    const std::uint32_t others_w = ls.writers & ~self;
    const std::uint32_t others_r = ls.readers & ~self;

    bool needs_stratum = false;
    if (rec.isRead && others_w)
        needs_stratum = true; // RAW within the current region
    if (rec.isWrite) {
        if (others_w)
            needs_stratum = true; // WAW
        if (record_war_ && others_r)
            needs_stratum = true; // WAR (optional)
    }

    if (needs_stratum) {
        cutStratum();
        refresh(ls);
    }

    if (rec.isRead)
        ls.readers |= self;
    if (rec.isWrite)
        ls.writers |= self;
    ++memops_[rec.proc];
}

std::uint64_t
StrataRecorder::sizeBits() const
{
    return static_cast<std::uint64_t>(strata_.size()) * num_procs_ * 20;
}

std::vector<std::uint8_t>
StrataRecorder::packedBytes() const
{
    BitWriter writer;
    for (const auto &counts : strata_)
        for (const auto c : counts)
            writer.write(c, 20);
    return writer.bytes();
}

} // namespace delorean
