/**
 * @file
 * Word-granular committed architectural memory state.
 *
 * Memory is sparse: untouched words read as a deterministic function
 * of their address (so two states that differ only in redundantly
 * written default values still hash equal). The chunk engine buffers
 * speculative stores privately and only applies them here at commit,
 * which is what makes chunk execution atomic and isolated.
 */

#ifndef DELOREAN_MEMORY_MEMORY_STATE_HPP_
#define DELOREAN_MEMORY_MEMORY_STATE_HPP_

#include <cstdint>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace delorean
{

/** Committed memory image, word addressed. */
class MemoryState
{
  public:
    /** Deterministic initial value of an untouched word. */
    static std::uint64_t
    initValue(Addr word_addr)
    {
        return mix64(word_addr ^ 0xA5A5A5A55A5A5A5Aull);
    }

    /** Read the committed value of @p word_addr. */
    std::uint64_t
    load(Addr word_addr) const
    {
        const auto it = words_.find(word_addr);
        return it == words_.end() ? initValue(word_addr) : it->second;
    }

    /** Write @p value to @p word_addr. */
    void
    store(Addr word_addr, std::uint64_t value)
    {
        if (value == initValue(word_addr))
            words_.erase(word_addr);
        else
            words_[word_addr] = value;
    }

    /** Number of words holding a non-default value. */
    std::size_t population() const { return words_.size(); }

    /**
     * Order-independent content hash; equal iff the architectural
     * memory images are equal.
     */
    std::uint64_t
    hash() const
    {
        std::uint64_t h = 0x12345678DEADBEEFull;
        for (const auto &[addr, value] : words_)
            h += mix64(addr * 0x9E3779B97F4A7C15ull) ^ mix64(value);
        return h;
    }

    /** Full snapshot (used by system checkpointing). */
    MemoryState snapshot() const { return *this; }

    /** Non-default words (serialization of checkpoints). */
    const std::unordered_map<Addr, std::uint64_t> &
    words() const
    {
        return words_;
    }

    bool
    operator==(const MemoryState &other) const
    {
        return words_ == other.words_;
    }

  private:
    std::unordered_map<Addr, std::uint64_t> words_;
};

} // namespace delorean

#endif // DELOREAN_MEMORY_MEMORY_STATE_HPP_
