/**
 * @file
 * Word-granular committed architectural memory state.
 *
 * Memory is sparse: untouched words read as a deterministic function
 * of their address (so two states that differ only in redundantly
 * written default values still hash equal). The chunk engine buffers
 * speculative stores privately and only applies them here at commit,
 * which is what makes chunk execution atomic and isolated.
 *
 * Every committed store and every cache-missing load lands here, so
 * the container is a flat open-addressed table with linear probing
 * (one or two cache lines per probe) rather than std::unordered_map,
 * whose per-node allocations and modulo hashing dominated the engine
 * profile. Deleting a word (a store of its default value) uses
 * backward-shift deletion, so lookups never scan tombstones.
 */

#ifndef DELOREAN_MEMORY_MEMORY_STATE_HPP_
#define DELOREAN_MEMORY_MEMORY_STATE_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace delorean
{

/** Committed memory image, word addressed. */
class MemoryState
{
  public:
    MemoryState() { slots_.resize(kMinSlots); }

    /** Deterministic initial value of an untouched word. */
    static std::uint64_t
    initValue(Addr word_addr)
    {
        return mix64(word_addr ^ 0xA5A5A5A55A5A5A5Aull);
    }

    /** Read the committed value of @p word_addr. */
    std::uint64_t
    load(Addr word_addr) const
    {
        std::size_t i = indexOf(word_addr);
        for (;;) {
            const Slot &s = slots_[i];
            if (!s.live)
                return initValue(word_addr);
            if (s.key == word_addr)
                return s.value;
            i = (i + 1) & (slots_.size() - 1);
        }
    }

    /** Write @p value to @p word_addr. */
    void
    store(Addr word_addr, std::uint64_t value)
    {
        if (value == initValue(word_addr)) {
            erase(word_addr);
            return;
        }
        if ((size_ + 1) * 4 > slots_.size() * 3)
            grow();
        std::size_t i = indexOf(word_addr);
        for (;;) {
            Slot &s = slots_[i];
            if (!s.live) {
                s.key = word_addr;
                s.value = value;
                s.live = true;
                ++size_;
                return;
            }
            if (s.key == word_addr) {
                s.value = value;
                return;
            }
            i = (i + 1) & (slots_.size() - 1);
        }
    }

    /** Number of words holding a non-default value. */
    std::size_t population() const { return size_; }

    /**
     * Order-independent content hash; equal iff the architectural
     * memory images are equal.
     */
    std::uint64_t
    hash() const
    {
        std::uint64_t h = 0x12345678DEADBEEFull;
        for (const Slot &s : slots_)
            if (s.live)
                h += mix64(s.key * 0x9E3779B97F4A7C15ull)
                     ^ mix64(s.value);
        return h;
    }

    /** Full snapshot (used by system checkpointing). */
    MemoryState snapshot() const { return *this; }

    /** Visit every non-default word (serialization of checkpoints). */
    template <typename Fn>
    void
    forEachWord(Fn &&fn) const
    {
        for (const Slot &s : slots_)
            if (s.live)
                fn(s.key, s.value);
    }

    bool
    operator==(const MemoryState &other) const
    {
        if (size_ != other.size_)
            return false;
        for (const Slot &s : slots_) {
            if (!s.live)
                continue;
            if (other.load(s.key) != s.value)
                return false;
        }
        return true;
    }

  private:
    struct Slot
    {
        Addr key = 0;
        std::uint64_t value = 0;
        bool live = false;
    };

    static constexpr std::size_t kMinSlots = 1024;

    std::size_t
    indexOf(Addr key) const
    {
        return static_cast<std::size_t>(mix64(key))
               & (slots_.size() - 1);
    }

    /** Remove @p key, keeping probe chains gap-free (backward shift). */
    void
    erase(Addr key)
    {
        std::size_t hole = indexOf(key);
        for (;;) {
            const Slot &s = slots_[hole];
            if (!s.live)
                return; // already default
            if (s.key == key)
                break;
            hole = (hole + 1) & (slots_.size() - 1);
        }
        // Shift back every entry the hole would cut off from its home
        // slot, then free the final hole.
        std::size_t j = hole;
        for (;;) {
            j = (j + 1) & (slots_.size() - 1);
            Slot &sj = slots_[j];
            if (!sj.live)
                break;
            const std::size_t home = indexOf(sj.key);
            // sj stays findable iff its home lies in (hole, j]
            // (cyclically); otherwise it must move into the hole.
            const bool reachable = (j >= hole)
                                       ? (home > hole && home <= j)
                                       : (home > hole || home <= j);
            if (!reachable) {
                slots_[hole] = sj;
                sj.live = false;
                hole = j;
            }
        }
        slots_[hole].live = false;
        --size_;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        for (const Slot &s : old) {
            if (!s.live)
                continue;
            std::size_t i = indexOf(s.key);
            while (slots_[i].live)
                i = (i + 1) & (slots_.size() - 1);
            slots_[i] = s;
        }
    }

    std::vector<Slot> slots_; ///< power-of-two length
    std::size_t size_ = 0;
};

} // namespace delorean

#endif // DELOREAN_MEMORY_MEMORY_STATE_HPP_
