#include "memory/cache.hpp"

#include <cassert>

namespace delorean
{

namespace
{

unsigned
setsFor(unsigned size_bytes, unsigned ways)
{
    const unsigned lines = size_bytes / kLineBytes;
    assert(lines % ways == 0);
    const unsigned sets = lines / ways;
    assert((sets & (sets - 1)) == 0 && "set count must be a power of two");
    return sets;
}

} // namespace

Cache::Cache(unsigned size_bytes, unsigned ways)
    : num_sets_(setsFor(size_bytes, ways)),
      ways_(ways),
      ways_storage_(static_cast<std::size_t>(num_sets_) * ways)
{
}

bool
Cache::access(Addr line)
{
    Way *set = &ways_storage_[static_cast<std::size_t>(indexOf(line)) * ways_];
    ++use_clock_;
    Way *victim = &set[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].line == line) {
            set[w].lastUse = use_clock_;
            ++hits_;
            return true;
        }
        if (!set[w].valid) {
            victim = &set[w];
        } else if (victim->valid && set[w].lastUse < victim->lastUse) {
            victim = &set[w];
        }
    }
    ++misses_;
    victim->valid = true;
    victim->line = line;
    victim->lastUse = use_clock_;
    return false;
}

bool
Cache::contains(Addr line) const
{
    const Way *set =
        &ways_storage_[static_cast<std::size_t>(indexOf(line)) * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (set[w].valid && set[w].line == line)
            return true;
    return false;
}

bool
Cache::invalidate(Addr line)
{
    Way *set = &ways_storage_[static_cast<std::size_t>(indexOf(line)) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].line == line) {
            set[w].valid = false;
            return true;
        }
    }
    return false;
}

void
Cache::reset()
{
    for (auto &way : ways_storage_)
        way = Way{};
    use_clock_ = 0;
    hits_ = 0;
    misses_ = 0;
}

CacheHierarchy::CacheHierarchy(const MachineConfig &config)
    : l2_(config.mem.l2SizeBytes, config.mem.l2Ways)
{
    l1s_.reserve(config.numProcs);
    for (unsigned p = 0; p < config.numProcs; ++p)
        l1s_.emplace_back(config.mem.l1SizeBytes, config.mem.l1Ways);
}

HitLevel
CacheHierarchy::access(ProcId proc, Addr line)
{
    assert(proc < l1s_.size());
    if (l1s_[proc].access(line))
        return HitLevel::kL1;
    if (l2_.access(line))
        return HitLevel::kL2;
    return HitLevel::kMemory;
}

HitLevel
CacheHierarchy::probe(ProcId proc, Addr line) const
{
    assert(proc < l1s_.size());
    if (l1s_[proc].contains(line))
        return HitLevel::kL1;
    if (l2_.contains(line))
        return HitLevel::kL2;
    return HitLevel::kMemory;
}

void
CacheHierarchy::invalidateOthers(ProcId except, Addr line)
{
    for (ProcId p = 0; p < l1s_.size(); ++p)
        if (p != except)
            l1s_[p].invalidate(line);
}

void
CacheHierarchy::pollute(ProcId proc, Addr line)
{
    assert(proc < l1s_.size());
    l1s_[proc].access(line);
}

void
CacheHierarchy::reset()
{
    for (auto &l1 : l1s_)
        l1.reset();
    l2_.reset();
}

} // namespace delorean
