#include "memory/cache.hpp"

#include <cassert>

namespace delorean
{

namespace
{

unsigned
setsFor(unsigned size_bytes, unsigned ways)
{
    const unsigned lines = size_bytes / kLineBytes;
    assert(lines % ways == 0);
    const unsigned sets = lines / ways;
    assert((sets & (sets - 1)) == 0 && "set count must be a power of two");
    return sets;
}

} // namespace

Cache::Cache(unsigned size_bytes, unsigned ways)
    : num_sets_(setsFor(size_bytes, ways)),
      ways_(ways),
      ways_storage_(static_cast<std::size_t>(num_sets_) * ways)
{
}

void
Cache::reset()
{
    for (auto &way : ways_storage_)
        way = Way{};
    use_clock_ = 0;
    hits_ = 0;
    misses_ = 0;
}

CacheHierarchy::CacheHierarchy(const MachineConfig &config)
    : l2_(config.mem.l2SizeBytes, config.mem.l2Ways)
{
    l1s_.reserve(config.numProcs);
    for (unsigned p = 0; p < config.numProcs; ++p)
        l1s_.emplace_back(config.mem.l1SizeBytes, config.mem.l1Ways);
}

void
CacheHierarchy::invalidateOthers(ProcId except, Addr line)
{
    for (ProcId p = 0; p < l1s_.size(); ++p)
        if (p != except)
            l1s_[p].invalidate(line);
}

void
CacheHierarchy::pollute(ProcId proc, Addr line)
{
    assert(proc < l1s_.size());
    l1s_[proc].access(line);
}

void
CacheHierarchy::reset()
{
    for (auto &l1 : l1s_)
        l1.reset();
    l2_.reset();
}

} // namespace delorean
