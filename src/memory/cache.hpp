/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * Used for the private L1s and the shared L2 (Table 5 geometries).
 * The model tracks tags only — data lives in MemoryState — but the
 * hit/miss outcomes are structural: they depend on the actual address
 * stream, so cache-overflow chunk truncation and the timing model both
 * see real behaviour.
 */

#ifndef DELOREAN_MEMORY_CACHE_HPP_
#define DELOREAN_MEMORY_CACHE_HPP_

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace delorean
{

/** Where an access was satisfied. */
enum class HitLevel : std::uint8_t
{
    kL1,
    kL2,
    kMemory,
};

/** One set-associative tag array with LRU replacement. */
class Cache
{
  public:
    /**
     * @param size_bytes total capacity
     * @param ways associativity
     */
    Cache(unsigned size_bytes, unsigned ways);

    /**
     * Look up @p line; on miss, fill it (possibly evicting LRU).
     * @return true on hit. Inline: this tag scan runs once per
     * simulated memory access and dominates the cache model's cost.
     */
    bool
    access(Addr line)
    {
        Way *set =
            &ways_storage_[static_cast<std::size_t>(indexOf(line)) * ways_];
        ++use_clock_;
        Way *victim = &set[0];
        for (unsigned w = 0; w < ways_; ++w) {
            if (set[w].valid && set[w].line == line) {
                set[w].lastUse = use_clock_;
                ++hits_;
                return true;
            }
            if (!set[w].valid) {
                victim = &set[w];
            } else if (victim->valid && set[w].lastUse < victim->lastUse) {
                victim = &set[w];
            }
        }
        ++misses_;
        victim->valid = true;
        victim->line = line;
        victim->lastUse = use_clock_;
        return false;
    }

    /** Look up without filling or touching LRU state. */
    bool
    contains(Addr line) const
    {
        const Way *set =
            &ways_storage_[static_cast<std::size_t>(indexOf(line)) * ways_];
        for (unsigned w = 0; w < ways_; ++w)
            if (set[w].valid && set[w].line == line)
                return true;
        return false;
    }

    /** Invalidate @p line if present; returns true if it was. */
    bool
    invalidate(Addr line)
    {
        Way *set =
            &ways_storage_[static_cast<std::size_t>(indexOf(line)) * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            if (set[w].valid && set[w].line == line) {
                set[w].valid = false;
                return true;
            }
        }
        return false;
    }

    /** Set index that @p line maps to. */
    unsigned setIndexOf(Addr line) const { return indexOf(line); }

    unsigned numSets() const { return num_sets_; }
    unsigned numWays() const { return ways_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Drop all contents and statistics. */
    void reset();

  private:
    struct Way
    {
        Addr line = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    unsigned indexOf(Addr line) const { return line & (num_sets_ - 1); }

    unsigned num_sets_;
    unsigned ways_;
    std::vector<Way> ways_storage_; // num_sets_ * ways_
    std::uint64_t use_clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * Private-L1s + shared-L2 hierarchy. Returns the level that satisfied
 * each access and fills the caches along the way. Latency translation
 * is the timing model's job.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(const MachineConfig &config);

    /** Access @p line from processor @p proc; fills L1[proc] and L2. */
    HitLevel
    access(ProcId proc, Addr line)
    {
        if (l1s_[proc].access(line))
            return HitLevel::kL1;
        if (l2_.access(line))
            return HitLevel::kL2;
        return HitLevel::kMemory;
    }

    /** Probe-only variant (no state change). */
    HitLevel
    probe(ProcId proc, Addr line) const
    {
        if (l1s_[proc].contains(line))
            return HitLevel::kL1;
        if (l2_.contains(line))
            return HitLevel::kL2;
        return HitLevel::kMemory;
    }

    /** Invalidate @p line in every L1 except @p except (coherence). */
    void invalidateOthers(ProcId except, Addr line);

    /** Warm a line into a processor's L1 (wrong-path pollution). */
    void pollute(ProcId proc, Addr line);

    const Cache &l1(ProcId proc) const { return l1s_[proc]; }
    Cache &l1(ProcId proc) { return l1s_[proc]; }
    const Cache &l2() const { return l2_; }
    Cache &l2() { return l2_; }

    void reset();

  private:
    std::vector<Cache> l1s_;
    Cache l2_;
};

} // namespace delorean

#endif // DELOREAN_MEMORY_CACHE_HPP_
