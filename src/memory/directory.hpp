/**
 * @file
 * Directory model: per-line sharer tracking and coherence-traffic
 * accounting for the generic-network machine of Figure 2.
 *
 * Timing of individual coherence messages is folded into the cache
 * latencies; the directory's job here is (i) to know which L1s must be
 * invalidated when a chunk's writes commit and (ii) to count network
 * traffic in bytes, which backs the Section 6.3 traffic comparison
 * (DeLorean vs RC network bytes).
 */

#ifndef DELOREAN_MEMORY_DIRECTORY_HPP_
#define DELOREAN_MEMORY_DIRECTORY_HPP_

#include <bit>
#include <cstdint>

#include "common/types.hpp"
#include "common/word_map.hpp"

namespace delorean
{

/** Per-message-class network byte counters. */
struct TrafficStats
{
    std::uint64_t dataBytes = 0;      ///< cache-line transfers
    std::uint64_t controlBytes = 0;   ///< requests/acks/invalidations
    std::uint64_t signatureBytes = 0; ///< signature expansion/commit

    std::uint64_t
    totalBytes() const
    {
        return dataBytes + controlBytes + signatureBytes;
    }
};

/** Sharer-tracking directory with traffic accounting. */
class Directory
{
  public:
    static constexpr unsigned kControlMsgBytes = 8;

    /** Record that @p proc obtained a copy of @p line. */
    void
    addSharer(ProcId proc, Addr line)
    {
        sharers_[line] |= (1ull << proc);
    }

    /** Sharer bitmask of @p line (bit p set => L1 of proc p holds it). */
    std::uint64_t
    sharersOf(Addr line) const
    {
        const std::uint64_t *mask = sharers_.find(line);
        return mask ? *mask : 0;
    }

    /**
     * A committed write to @p line by @p writer invalidates all other
     * sharers. Returns the number of invalidations sent (and counts
     * their traffic).
     */
    unsigned
    commitWrite(ProcId writer, Addr line)
    {
        std::uint64_t &mask = sharers_[line];
        const unsigned invalidations = static_cast<unsigned>(
            std::popcount(mask & ~(1ull << writer)));
        mask = 1ull << writer;
        traffic_.controlBytes +=
            static_cast<std::uint64_t>(invalidations) * kControlMsgBytes;
        return invalidations;
    }

    /** Account a line transfer (miss fill). */
    void
    countLineTransfer()
    {
        traffic_.dataBytes += kLineBytes;
        traffic_.controlBytes += kControlMsgBytes;
    }

    /** Account one signature message of @p signature_bits bits. */
    void
    countSignatureMessage(unsigned signature_bits)
    {
        traffic_.signatureBytes += signature_bits / 8;
    }

    /** Account a generic control message. */
    void countControlMessage() { traffic_.controlBytes += kControlMsgBytes; }

    const TrafficStats &traffic() const { return traffic_; }

    void
    reset()
    {
        sharers_.clear();
        traffic_ = TrafficStats{};
    }

  private:
    WordMap sharers_;
    TrafficStats traffic_;
};

} // namespace delorean

#endif // DELOREAN_MEMORY_DIRECTORY_HPP_
