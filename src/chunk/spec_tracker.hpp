/**
 * @file
 * Per-processor speculative-line tracker.
 *
 * Speculatively written lines must stay in the L1 until their chunk
 * commits. When a chunk is about to write a line in a set whose ways
 * are already filled by speculative lines (of *any* in-flight chunk of
 * the processor — several chunks share the L1), the write cannot be
 * accommodated and the chunk must be truncated (Section 4.2.3). The
 * truncation point is genuinely non-deterministic because the number
 * of in-flight chunks at any moment is timing-dependent.
 */

#ifndef DELOREAN_CHUNK_SPEC_TRACKER_HPP_
#define DELOREAN_CHUNK_SPEC_TRACKER_HPP_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace delorean
{

/** Tracks speculative (written, uncommitted) lines in one L1. */
class SpecTracker
{
  public:
    /**
     * @param num_sets L1 set count
     * @param ways L1 associativity (max spec lines per set)
     */
    SpecTracker(unsigned num_sets, unsigned ways)
        : num_sets_(num_sets), ways_(ways), set_counts_(num_sets, 0)
    {
    }

    /**
     * True if adding line @p line (not already speculative) would
     * overflow its set.
     */
    bool
    wouldOverflow(Addr line) const
    {
        if (lines_.count(line))
            return false; // already tracked; no new way needed
        return set_counts_[setOf(line)] >= ways_;
    }

    /** Register a speculative write to @p line (refcounted). */
    void
    insert(Addr line)
    {
        if (++lines_[line] == 1)
            ++set_counts_[setOf(line)];
    }

    /** Release one reference to @p line (chunk commit or squash). */
    void
    remove(Addr line)
    {
        auto it = lines_.find(line);
        if (it == lines_.end())
            return;
        if (--it->second == 0) {
            --set_counts_[setOf(line)];
            lines_.erase(it);
        }
    }

    /** Release all of a chunk's lines. */
    void
    removeAll(const std::vector<Addr> &chunk_lines)
    {
        for (const Addr line : chunk_lines)
            remove(line);
    }

    /** Current number of distinct speculative lines. */
    std::size_t distinctLines() const { return lines_.size(); }

    /** Speculative lines currently in @p set. */
    unsigned setCount(unsigned set) const { return set_counts_[set]; }

  private:
    unsigned setOf(Addr line) const { return line & (num_sets_ - 1); }

    unsigned num_sets_;
    unsigned ways_;
    std::vector<unsigned> set_counts_;
    std::unordered_map<Addr, unsigned> lines_; // line -> refcount
};

} // namespace delorean

#endif // DELOREAN_CHUNK_SPEC_TRACKER_HPP_
