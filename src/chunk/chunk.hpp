/**
 * @file
 * Chunk: a block of consecutive dynamic instructions executed
 * atomically and in isolation (Section 3.1 / Appendix A).
 *
 * A chunk buffers its stores privately (version management is lazy),
 * accumulates Read/Write signatures for disambiguation, and snapshots
 * the thread context at its start so a squash is a plain restore.
 */

#ifndef DELOREAN_CHUNK_CHUNK_HPP_
#define DELOREAN_CHUNK_CHUNK_HPP_

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "common/word_map.hpp"
#include "signature/signature.hpp"
#include "trace/thread_context.hpp"

namespace delorean
{

/** Why a chunk ended before / at its target size. */
enum class ChunkEnd : std::uint8_t
{
    kSizeLimit,     ///< reached the standard chunk size (deterministic)
    kHardInstr,     ///< uncached access / special instr (deterministic)
    kProgramEnd,    ///< thread finished (deterministic)
    kCacheOverflow, ///< speculative-line overflow (NON-deterministic)
    kCollision,     ///< repeated-collision back-off (NON-deterministic)
    kCsLogForced,   ///< replay: truncated because the CS log says so
};

/** True for the truncation causes that must be logged (Section 4.2.3). */
constexpr bool
isNonDeterministicEnd(ChunkEnd end)
{
    return end == ChunkEnd::kCacheOverflow || end == ChunkEnd::kCollision;
}

/** Lifecycle of an in-flight chunk. */
enum class ChunkState : std::uint8_t
{
    kExecuting,  ///< completion event scheduled
    kCompleted,  ///< finished, commit request in flight / queued
    kCommitting, ///< arbiter granted; propagation in progress
};

/** One speculative chunk. */
struct Chunk
{
    ProcId proc = 0;
    ChunkSeq seq = 0; ///< processor-local commit sequence number

    /// Context snapshot at chunk start (restored on squash).
    ThreadContext startCtx;
    /// Context at chunk end; becomes architectural at commit.
    ThreadContext endCtx;

    /// Buffered speculative stores, in program order, word granular.
    std::vector<std::pair<Addr, std::uint64_t>> writes;
    /// Last buffered value per word, for same-chunk load forwarding.
    /// Flat epoch-cleared map: recycling costs O(1), probing one or
    /// two cache lines (this is the hottest lookup in the engine).
    WordMap writeMap;

    SignaturePair sigs;

    InstrCount size = 0;       ///< dynamic instructions in the chunk
    InstrCount targetSize = 0; ///< size limit this execution aimed for
    ChunkEnd endReason = ChunkEnd::kSizeLimit;

    /// Values consumed by the chunk's I/O loads, in order; appended to
    /// the I/O log when the chunk commits.
    std::vector<std::uint64_t> ioValues;

    ChunkState state = ChunkState::kExecuting;
    Cycle startTime = 0;
    Cycle finishTime = 0;
    unsigned squashCount = 0; ///< times this chunk has been squashed

    /// Lines written (for spec-line tracking release on squash/commit).
    std::vector<Addr> writtenLines;

    /**
     * Return the chunk to its just-constructed state, keeping the
     * buffers' allocations so a recycled chunk re-executes without
     * touching the allocator (the contexts are overwritten wholesale
     * when the chunk is rebuilt).
     */
    void
    reset()
    {
        proc = 0;
        seq = 0;
        writes.clear();
        writeMap.clear();
        sigs.clear();
        size = 0;
        targetSize = 0;
        endReason = ChunkEnd::kSizeLimit;
        ioValues.clear();
        state = ChunkState::kExecuting;
        startTime = 0;
        finishTime = 0;
        squashCount = 0;
        writtenLines.clear();
    }

    /** Fingerprint contribution of the committed chunk. */
    std::uint64_t
    contentHash() const
    {
        std::uint64_t h = endCtx.acc;
        h = mix64(h ^ size);
        h = mix64(h ^ (static_cast<std::uint64_t>(proc) << 48 ^ seq));
        return h;
    }

    /** Forward a same-chunk buffered store, if any. */
    bool
    forward(Addr word_addr, std::uint64_t &value) const
    {
        const std::uint64_t *stored = writeMap.find(word_addr);
        if (!stored)
            return false;
        value = *stored;
        return true;
    }
};

} // namespace delorean

#endif // DELOREAN_CHUNK_CHUNK_HPP_
