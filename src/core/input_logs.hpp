/**
 * @file
 * Input logs: Interrupt, I/O and DMA (Figure 2, Section 3.3).
 *
 * These capture the non-repeatable inputs of the initial execution so
 * that replay can reproduce them:
 *  - Interrupt log (per processor): the local chunkID whose start
 *    initiates the handler, plus the interrupt's type and data.
 *  - I/O log (per processor): the values obtained by I/O loads, in
 *    architectural order (indexed by the thread's ioLoadCount).
 *  - DMA log (shared): the data each DMA transfer wrote, plus — in
 *    PicoLog, which has no PI log — the "commit slot" (global chunk
 *    commit count) at which the transfer committed.
 */

#ifndef DELOREAN_CORE_INPUT_LOGS_HPP_
#define DELOREAN_CORE_INPUT_LOGS_HPP_

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "trace/devices.hpp"

namespace delorean
{

/** One recorded interrupt. */
struct InterruptRecord
{
    ChunkSeq chunkSeq = 0; ///< local ID of the chunk starting the handler
    std::uint8_t type = 0;
    std::uint64_t data = 0;
};

/** Per-processor interrupt logs. */
class InterruptLog
{
  public:
    explicit InterruptLog(unsigned num_procs) : per_proc_(num_procs) {}

    /** Processor count the log was sized for. */
    unsigned
    numProcs() const
    {
        return static_cast<unsigned>(per_proc_.size());
    }

    void
    append(ProcId proc, const InterruptRecord &rec)
    {
        per_proc_[proc].push_back(rec);
    }

    const std::vector<InterruptRecord> &
    entries(ProcId proc) const
    {
        return per_proc_[proc];
    }

    std::size_t
    totalEntries() const
    {
        std::size_t n = 0;
        for (const auto &v : per_proc_)
            n += v.size();
        return n;
    }

    /** Approximate size: 32-bit chunkID + 2-bit type + 64-bit data. */
    std::uint64_t sizeBits() const { return totalEntries() * (32 + 2 + 64); }

  private:
    std::vector<std::vector<InterruptRecord>> per_proc_;
};

/** Per-processor replay cursor over the interrupt log. */
class InterruptLogCursor
{
  public:
    InterruptLogCursor(const InterruptLog &log, ProcId proc)
        : entries_(&log.entries(proc))
    {
    }

    /** True if an interrupt must fire at the start of chunk @p seq. */
    bool
    pendingFor(ChunkSeq seq) const
    {
        return pos_ < entries_->size() && (*entries_)[pos_].chunkSeq == seq;
    }

    const InterruptRecord &peek() const { return (*entries_)[pos_]; }

    void consume() { ++pos_; }

  private:
    const std::vector<InterruptRecord> *entries_;
    std::size_t pos_ = 0;
};

/** Per-processor I/O-load value log, indexed by ioLoadCount. */
class IoLog
{
  public:
    explicit IoLog(unsigned num_procs) : per_proc_(num_procs) {}

    /** Processor count the log was sized for. */
    unsigned
    numProcs() const
    {
        return static_cast<unsigned>(per_proc_.size());
    }

    /** Record that I/O load number @p index returned @p value. */
    void
    append(ProcId proc, std::uint64_t index, std::uint64_t value)
    {
        auto &v = per_proc_[proc];
        if (index >= v.size())
            v.resize(index + 1, 0);
        v[index] = value;
    }

    /** Value for I/O load number @p index during replay. */
    std::uint64_t
    valueAt(ProcId proc, std::uint64_t index) const
    {
        return per_proc_[proc].at(index);
    }

    /** Number of logged I/O loads for @p proc. */
    std::size_t
    countFor(ProcId proc) const
    {
        return per_proc_[proc].size();
    }

    std::size_t
    totalEntries() const
    {
        std::size_t n = 0;
        for (const auto &v : per_proc_)
            n += v.size();
        return n;
    }

    std::uint64_t sizeBits() const { return totalEntries() * 64; }

  private:
    std::vector<std::vector<std::uint64_t>> per_proc_;
};

/** Shared DMA log: transfers in commit order (+ PicoLog slots). */
class DmaLog
{
  public:
    void
    append(const DmaTransfer &xfer, std::uint64_t commit_slot)
    {
        transfers_.push_back(xfer);
        commit_slots_.push_back(commit_slot);
    }

    std::size_t count() const { return transfers_.size(); }

    const DmaTransfer &transferAt(std::size_t i) const
    {
        return transfers_[i];
    }

    /** Global chunk-commit count at which transfer @p i committed. */
    std::uint64_t slotAt(std::size_t i) const { return commit_slots_[i]; }

    std::uint64_t
    sizeBits() const
    {
        std::uint64_t bits = 0;
        for (const auto &t : transfers_)
            bits += 64 + t.values.size() * (64 + 32);
        return bits;
    }

  private:
    std::vector<DmaTransfer> transfers_;
    std::vector<std::uint64_t> commit_slots_;
};

} // namespace delorean

#endif // DELOREAN_CORE_INPUT_LOGS_HPP_
