/**
 * @file
 * Processor Interleaving (PI) log.
 *
 * One entry per chunk commit, written by the arbiter: just the ID of
 * the committing processor (Table 3). With 8 processors plus the DMA
 * pseudo-processor an entry is 4 bits (Table 5). During replay the
 * arbiter walks the log and grants commit permissions in exactly the
 * recorded order.
 */

#ifndef DELOREAN_CORE_PI_LOG_HPP_
#define DELOREAN_CORE_PI_LOG_HPP_

#include <cstdint>
#include <vector>

#include "common/bitstream.hpp"
#include "common/types.hpp"

namespace delorean
{

/** Append/read PI log. Entries are procIDs; DMA has its own ID. */
class PiLog
{
  public:
    /**
     * @param num_procs processor count; the DMA is encoded as
     *        @p num_procs, so entries use ceil(log2(num_procs+1)) bits
     *        (4 bits for the 8-processor machine).
     */
    explicit PiLog(unsigned num_procs);

    /** Record a chunk commit by @p proc (or kDmaProcId). */
    void append(ProcId proc);

    std::size_t entryCount() const { return entries_.size(); }

    /** Entry @p i, decoded (kDmaProcId for DMA slots). */
    ProcId
    entryAt(std::size_t i) const
    {
        return entries_[i] == dma_code_ ? kDmaProcId
                                        : static_cast<ProcId>(entries_[i]);
    }

    /** Entry width in bits. */
    unsigned entryBits() const { return entry_bits_; }

    /** Total log size in bits (entries * width). */
    std::uint64_t sizeBits() const { return entries_.size() * entry_bits_; }

    /** Bit-packed image (for LZ77 compression measurement). */
    const std::vector<std::uint8_t> &packedBytes() const;

    /** Accumulator spills performed by the packed writer. */
    std::uint64_t wordFlushes() const { return packed_.wordFlushes(); }

  private:
    unsigned num_procs_;
    unsigned entry_bits_;
    std::uint16_t dma_code_;
    std::vector<std::uint16_t> entries_;
    /// Entries bit-packed as they are appended, so packedBytes() is
    /// O(1) instead of re-encoding the whole log per measurement.
    BitWriter packed_;
};

/** Sequential reader used by the replay arbiter. */
class PiLogCursor
{
  public:
    explicit PiLogCursor(const PiLog &log) : log_(&log) {}

    bool atEnd() const { return pos_ >= log_->entryCount(); }

    /** Next committing proc without consuming. */
    ProcId peek() const { return log_->entryAt(pos_); }

    /** Consume the next entry. */
    ProcId
    next()
    {
        return log_->entryAt(pos_++);
    }

    std::size_t position() const { return pos_; }

  private:
    const PiLog *log_;
    std::size_t pos_ = 0;
};

} // namespace delorean

#endif // DELOREAN_CORE_PI_LOG_HPP_
