/**
 * @file
 * Processor Interleaving (PI) log.
 *
 * One entry per chunk commit, written by the arbiter: just the ID of
 * the committing processor (Table 3). With 8 processors plus the DMA
 * pseudo-processor an entry is 4 bits (Table 5). During replay the
 * arbiter walks the log and grants commit permissions in exactly the
 * recorded order.
 */

#ifndef DELOREAN_CORE_PI_LOG_HPP_
#define DELOREAN_CORE_PI_LOG_HPP_

#include <cstdint>
#include <vector>

#include "common/bitstream.hpp"
#include "common/types.hpp"

namespace delorean
{

/**
 * Append/read PI log. Entries are procIDs; DMA has its own ID.
 *
 * Format v2 partial-order extension: when the machine runs a sharded
 * arbiter hierarchy (numArbiters > 1), every entry additionally
 * carries the committing chunk's *shard mask* — one bit per address
 * shard the chunk's read/write line sets touch. The entry sequence is
 * still a valid total order (the order the root/shard arbiters
 * actually granted), so a v2 log always replays under the classic
 * total-order cursor; the masks let a PartialOrderCursor relax it to
 * exactly the recorded per-shard orders plus per-processor program
 * order. Masks are all-or-nothing per log (enableMasks()).
 */
class PiLog
{
  public:
    /**
     * @param num_procs processor count; the DMA is encoded as
     *        @p num_procs, so entries use ceil(log2(num_procs+1)) bits
     *        (4 bits for the 8-processor machine).
     */
    explicit PiLog(unsigned num_procs);

    /** Record a chunk commit by @p proc (or kDmaProcId). */
    void append(ProcId proc);

    /**
     * Switch the log to partial-order (masked) form. Must be called
     * while the log is empty; every entry must then be appended with
     * appendWithMask(). @p shard_count sets the mask width used for
     * log-size accounting (one bit per shard).
     */
    void enableMasks(unsigned shard_count);

    /** Record a commit plus its shard mask (requires enableMasks). */
    void appendWithMask(ProcId proc, std::uint64_t shard_mask);

    /** True when entries carry shard masks (partial-order v2 log). */
    bool hasMasks() const { return mask_bits_ != 0; }

    /** Mask width in bits (the shard count); 0 for total-order logs. */
    unsigned maskBits() const { return mask_bits_; }

    /** Shard mask of entry @p i (0 for total-order logs). */
    std::uint64_t
    maskAt(std::size_t i) const
    {
        return hasMasks() ? masks_[i] : 0;
    }

    std::size_t entryCount() const { return entries_.size(); }

    /** Entry @p i, decoded (kDmaProcId for DMA slots). */
    ProcId
    entryAt(std::size_t i) const
    {
        return entries_[i] == dma_code_ ? kDmaProcId
                                        : static_cast<ProcId>(entries_[i]);
    }

    /** Entry width in bits. */
    unsigned entryBits() const { return entry_bits_; }

    /**
     * Total log size in bits. Masked (partial-order) logs pay the
     * mask width per entry on top of the procID; total-order logs are
     * bit-identical to format v1 accounting.
     */
    std::uint64_t
    sizeBits() const
    {
        return entries_.size()
               * static_cast<std::uint64_t>(entry_bits_ + mask_bits_);
    }

    /** Bit-packed image (for LZ77 compression measurement). */
    const std::vector<std::uint8_t> &packedBytes() const;

    /** Accumulator spills performed by the packed writer. */
    std::uint64_t wordFlushes() const { return packed_.wordFlushes(); }

  private:
    unsigned num_procs_;
    unsigned entry_bits_;
    unsigned mask_bits_ = 0;
    std::uint16_t dma_code_;
    std::vector<std::uint16_t> entries_;
    std::vector<std::uint64_t> masks_;
    /// Entries bit-packed as they are appended, so packedBytes() is
    /// O(1) instead of re-encoding the whole log per measurement.
    BitWriter packed_;
};

/** Sequential reader used by the replay arbiter. */
class PiLogCursor
{
  public:
    explicit PiLogCursor(const PiLog &log) : log_(&log) {}

    bool atEnd() const { return pos_ >= log_->entryCount(); }

    /** Next committing proc without consuming. */
    ProcId peek() const { return log_->entryAt(pos_); }

    /** Consume the next entry. */
    ProcId
    next()
    {
        return log_->entryAt(pos_++);
    }

    std::size_t position() const { return pos_; }

  private:
    const PiLog *log_;
    std::size_t pos_ = 0;
};

/**
 * Partial-order reader over a masked (v2) PI log.
 *
 * The recorded constraints are exactly:
 *   - per-shard order: entries whose masks share shard s commit in
 *     log order relative to each other (s's arbiter serialized them);
 *   - per-processor program order: a processor's entries (DMA counts
 *     as its own pseudo-processor) commit in log order.
 *
 * An entry is *enabled* when it is the head of its processor queue
 * and the head of every shard queue its mask names. Any consumption
 * sequence of enabled entries is an execution the shard hierarchy
 * could have produced; the log's own total order is always one of
 * them, and the globally smallest unconsumed entry is always enabled,
 * so the cursor can never deadlock on a valid log.
 */
class PartialOrderCursor
{
  public:
    /** @p log must have masks; masks must be validated (see
     *  validateRecording) before a cursor is built over them. */
    PartialOrderCursor(const PiLog &log, unsigned num_procs,
                       unsigned shards);

    bool atEnd() const { return consumed_ == log_->entryCount(); }

    std::size_t consumed() const { return consumed_; }

    /** True when @p proc has an unconsumed entry left. */
    bool
    procHasEntries(ProcId proc) const
    {
        const unsigned q = queueOf(proc);
        return proc_head_[q] < proc_queue_[q].size();
    }

    /** True when @p proc's next entry is enabled (may commit now). */
    bool procReady(ProcId proc) const;

    /** Entry index of @p proc's next entry (requires procHasEntries). */
    std::size_t
    procHeadEntry(ProcId proc) const
    {
        const unsigned q = queueOf(proc);
        return proc_queue_[q][proc_head_[q]];
    }

    /** True when the DMA pseudo-processor's next entry is enabled. */
    bool dmaReady() const { return procReady(kDmaProcId); }

    /**
     * Consume @p proc's head entry (requires procReady). Returns the
     * consumed entry's index in the log.
     */
    std::size_t consumeProc(ProcId proc);

    /**
     * Commit position of entry @p i among non-DMA entries: the index
     * its CommitRecord occupies in the execution fingerprint. Lets an
     * out-of-order retirer fill the fingerprint positionally so the
     * result is byte-identical to an in-order replay's.
     */
    std::size_t
    chunkPosOf(std::size_t i) const
    {
        return chunk_pos_[i];
    }

    /** Non-DMA entry count (the fingerprint's commit-record count). */
    std::size_t chunkEntryCount() const { return chunk_entries_; }

    /**
     * Smallest unconsumed entry index — the point an in-order replay
     * would be at. Consuming any other enabled entry is a retire the
     * partial order permitted but the total order would have stalled.
     */
    std::size_t lowWatermark() const { return low_; }

  private:
    unsigned
    queueOf(ProcId proc) const
    {
        return proc == kDmaProcId ? num_procs_
                                  : static_cast<unsigned>(proc);
    }

    const PiLog *log_;
    unsigned num_procs_;
    unsigned shards_;
    std::size_t consumed_ = 0;
    std::size_t chunk_entries_ = 0;
    /// Entry indices per processor (index num_procs_ = DMA), with a
    /// consumed-head offset per queue.
    std::vector<std::vector<std::uint32_t>> proc_queue_;
    std::vector<std::size_t> proc_head_;
    /// Entry indices per shard, with a consumed-head offset per queue.
    std::vector<std::vector<std::uint32_t>> shard_queue_;
    std::vector<std::size_t> shard_head_;
    /// Entry index -> commit position among non-DMA entries.
    std::vector<std::uint32_t> chunk_pos_;
    /// Consumption bitmap + smallest-unconsumed pointer (lowWatermark).
    std::vector<bool> consumed_flag_;
    std::size_t low_ = 0;
};

} // namespace delorean

#endif // DELOREAN_CORE_PI_LOG_HPP_
