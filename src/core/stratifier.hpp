/**
 * @file
 * PI-log stratification (Section 4.3).
 *
 * Instead of one procID per commit, the stratified PI log records
 * *chunk strata*: vectors of per-processor counters giving the number
 * of chunks each processor committed since the previous stratum. The
 * chunks inside one stratum have no cross-processor conflicts, so
 * replay may commit them in any order (same-processor chunks
 * serialize by construction).
 *
 * The Stratifier module mirrors Figure 5(b): a vector of chunk
 * counters plus one Signature Register (SR) per processor holding the
 * OR of that processor's chunk signatures since the last stratum. A
 * new stratum is cut when the incoming chunk's signature intersects
 * another processor's SR, or when the processor's counter would
 * overflow its maximum.
 */

#ifndef DELOREAN_CORE_STRATIFIER_HPP_
#define DELOREAN_CORE_STRATIFIER_HPP_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bitstream.hpp"
#include "common/errors.hpp"
#include "common/flat_set.hpp"
#include "common/types.hpp"
#include "signature/signature.hpp"

namespace delorean
{

/** One stratum: per-processor committed-chunk counts. */
struct Stratum
{
    std::vector<std::uint8_t> counts; ///< chunks per processor
    bool isDma = false; ///< reserved all-zero pattern marks a DMA slot
};

/** Builds the stratified PI log as chunks commit. */
class Stratifier
{
  public:
    /**
     * @param num_procs processor count (stratum vector width)
     * @param max_chunks_per_proc counter maximum (1, 3 or 7 in Fig. 9)
     */
    Stratifier(unsigned num_procs, unsigned max_chunks_per_proc);

    /**
     * Feed a committed chunk: @p sig is the union of its R and W
     * signatures (hardware Signature-Register design of Figure 5(b)).
     */
    void onCommit(ProcId proc, const Signature &sig);

    /**
     * Feed a committed chunk using exact read/write line sets — the
     * idealized-signature counterpart used when the machine runs with
     * exact disambiguation. Cuts a stratum on a true cross-processor
     * conflict: W_new vs (R|W)_other or R_new vs W_other.
     */
    void onCommitLines(ProcId proc, const FlatSet<Addr> &reads,
                       const FlatSet<Addr> &writes);

    /** Feed a DMA commit: cuts the stratum and emits a DMA marker. */
    void onDmaCommit();

    /**
     * Force a stratum boundary at a checkpoint: the pending partial
     * stratum (if any) is cut, so every checkpoint GCC coincides with
     * a stratum boundary. The archive's segment slicing (src/store)
     * relies on strata never straddling a checkpoint.
     */
    void cutAtCheckpoint() { cutStratum(); }

    /** Flush the trailing partial stratum (call once at the end). */
    void finish();

    const std::vector<Stratum> &strata() const { return strata_; }

    /** Counter width in bits. */
    unsigned counterBits() const { return counter_bits_; }

    /** Total log size in bits: strata * procs * counterBits. */
    std::uint64_t
    sizeBits() const
    {
        return static_cast<std::uint64_t>(strata_.size()) * num_procs_
               * counter_bits_;
    }

    /** Bit-packed image for compression measurement. */
    std::vector<std::uint8_t> packedBytes() const;

  private:
    void cutStratum();

    unsigned num_procs_;
    unsigned max_per_proc_;
    unsigned counter_bits_;
    std::vector<std::uint8_t> counters_;
    std::vector<Signature> srs_;
    std::vector<FlatSet<Addr>> sr_reads_;
    std::vector<FlatSet<Addr>> sr_writes_;
    bool any_pending_ = false;
    std::vector<Stratum> strata_;
};

/**
 * Replay-side cursor: exposes, stratum by stratum, how many chunks
 * each processor may commit before the machine must drain to the next
 * stratum boundary.
 */
class StrataCursor
{
  public:
    explicit StrataCursor(const std::vector<Stratum> &strata,
                          unsigned num_procs)
        : strata_(&strata), remaining_(num_procs, 0)
    {
        loadNext();
    }

    /** True when every stratum has been fully consumed. */
    bool
    atEnd() const
    {
        return exhausted_;
    }

    /** True if the current stratum is a DMA slot. */
    bool isDmaSlot() const { return current_dma_; }

    /** Chunks processor @p proc may still commit in this stratum. */
    unsigned remainingFor(ProcId proc) const { return remaining_[proc]; }

    /** Consume one commit by @p proc; advances stratum when drained. */
    void
    consume(ProcId proc)
    {
        if (proc >= remaining_.size() || remaining_[proc] == 0)
            throw ReplayError(
                "stratified replay committed proc "
                + std::to_string(proc)
                + " beyond its budget in stratum "
                + std::to_string(pos_ ? pos_ - 1 : 0));
        --remaining_[proc];
        advanceIfDrained();
    }

    /** Consume the current DMA slot. */
    void
    consumeDma()
    {
        current_dma_ = false;
        loadNext();
    }

    /**
     * Skip forward to a checkpoint boundary: consume whole strata
     * until exactly @p committed[p] chunk commits per processor and
     * @p dma_consumed DMA slots have been accounted for. Checkpoints
     * are taken at stratum boundaries (Stratifier::cutAtCheckpoint),
     * so greedy whole-stratum consumption lands exactly on the
     * boundary; a stratum that would straddle it means the recording
     * and checkpoint disagree, which is a format error.
     */
    void
    advanceTo(const std::vector<ChunkSeq> &committed,
              std::size_t dma_consumed)
    {
        // Rewind: the constructor pre-loads stratum 0 into the
        // remaining-budget vector, but the accounting below must see
        // every stratum from the start of the log.
        pos_ = 0;
        std::fill(remaining_.begin(), remaining_.end(), 0u);
        std::vector<std::uint64_t> need(committed.begin(),
                                        committed.end());
        std::size_t dma_need = dma_consumed;
        const auto satisfied = [&] {
            if (dma_need)
                return false;
            for (const std::uint64_t v : need)
                if (v)
                    return false;
            return true;
        };
        while (!satisfied()) {
            if (pos_ >= strata_->size())
                throw RecordingFormatError(
                    "checkpoint lies beyond the strata log ("
                    + std::to_string(strata_->size()) + " strata)");
            const Stratum &s = (*strata_)[pos_++];
            if (s.isDma) {
                if (dma_need == 0)
                    throw RecordingFormatError(
                        "DMA stratum " + std::to_string(pos_ - 1)
                        + " precedes the checkpoint but its commit "
                          "does not");
                --dma_need;
                continue;
            }
            if (s.counts.size() != need.size())
                throw RecordingFormatError(
                    "stratum " + std::to_string(pos_ - 1) + " has "
                    + std::to_string(s.counts.size())
                    + " counters for " + std::to_string(need.size())
                    + " processors");
            for (std::size_t p = 0; p < need.size(); ++p) {
                if (s.counts[p] > need[p])
                    throw RecordingFormatError(
                        "stratum " + std::to_string(pos_ - 1)
                        + " straddles the checkpoint boundary (proc "
                        + std::to_string(p) + ")");
                need[p] -= s.counts[p];
            }
        }
        exhausted_ = false;
        current_dma_ = false;
        loadNext();
    }

  private:
    void
    advanceIfDrained()
    {
        for (const unsigned r : remaining_)
            if (r)
                return;
        loadNext();
    }

    void
    loadNext()
    {
        while (pos_ < strata_->size()) {
            const Stratum &s = (*strata_)[pos_++];
            if (s.isDma) {
                current_dma_ = true;
                return;
            }
            if (s.counts.size() != remaining_.size())
                throw RecordingFormatError(
                    "stratum " + std::to_string(pos_ - 1) + " has "
                    + std::to_string(s.counts.size())
                    + " counters for "
                    + std::to_string(remaining_.size())
                    + " processors");
            bool any = false;
            for (std::size_t p = 0; p < remaining_.size(); ++p) {
                remaining_[p] = s.counts[p];
                any = any || s.counts[p];
            }
            if (any)
                return;
        }
        exhausted_ = true;
    }

    const std::vector<Stratum> *strata_;
    std::vector<unsigned> remaining_;
    std::size_t pos_ = 0;
    bool current_dma_ = false;
    bool exhausted_ = false;
};

} // namespace delorean

#endif // DELOREAN_CORE_STRATIFIER_HPP_
