/**
 * @file
 * Execution fingerprint: the evidence used to check determinism.
 *
 * A fingerprint captures the architectural outcome of a chunked
 * execution: the global commit interleaving (one record per *logical*
 * chunk), the per-thread dataflow accumulators and retired counts,
 * and a hash of the final memory image. Replay is deterministic
 * (Appendix B's definition) iff its fingerprint matches.
 *
 * Stratified replay may legally reorder commits of non-conflicting
 * chunks within a stratum, so it is checked with matchesPerProc(),
 * which compares per-processor commit streams and the final state but
 * not the global interleaving.
 */

#ifndef DELOREAN_CORE_FINGERPRINT_HPP_
#define DELOREAN_CORE_FINGERPRINT_HPP_

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace delorean
{

/** One committed logical chunk. */
struct CommitRecord
{
    ProcId proc = 0;
    ChunkSeq seq = 0;       ///< processor-local logical chunk number
    InstrCount size = 0;    ///< total instructions (pieces summed)
    std::uint64_t accAfter = 0; ///< thread accumulator after the chunk

    bool operator==(const CommitRecord &) const = default;
};

/** Architectural outcome of a chunked execution. */
struct ExecutionFingerprint
{
    std::vector<CommitRecord> commits; ///< global commit order
    std::vector<std::uint64_t> perProcAcc;
    std::vector<InstrCount> perProcRetired;
    std::uint64_t finalMemHash = 0;

    /** Exact match: same interleaving, same state. */
    bool
    matchesExact(const ExecutionFingerprint &other) const
    {
        return commits == other.commits && statesMatch(other);
    }

    /**
     * Per-processor match: each processor committed the same chunk
     * stream, and the final state is identical. The global
     * interleaving may differ (stratified replay).
     */
    bool
    matchesPerProc(const ExecutionFingerprint &other) const
    {
        if (!statesMatch(other))
            return false;
        const unsigned n =
            static_cast<unsigned>(perProcAcc.size());
        for (ProcId p = 0; p < n; ++p)
            if (procStream(p) != other.procStream(p))
                return false;
        return true;
    }

    /** This processor's commit stream, in order. */
    std::vector<CommitRecord>
    procStream(ProcId proc) const
    {
        std::vector<CommitRecord> stream;
        for (const auto &c : commits)
            if (c.proc == proc)
                stream.push_back(c);
        return stream;
    }

    /** Single hash summarizing the fingerprint (for quick checks). */
    std::uint64_t
    hash() const
    {
        std::uint64_t h = finalMemHash;
        for (const auto &c : commits) {
            h = mix64(h ^ c.accAfter);
            h = mix64(h ^ (static_cast<std::uint64_t>(c.proc) << 40 ^ c.size));
        }
        for (const auto a : perProcAcc)
            h = mix64(h ^ a);
        return h;
    }

    /** True if final state (memory, accs, retired counts) matches. */
    bool
    statesMatch(const ExecutionFingerprint &other) const
    {
        return finalMemHash == other.finalMemHash
               && perProcAcc == other.perProcAcc
               && perProcRetired == other.perProcRetired;
    }
};

/** Position-independent hash of one commit record. */
inline std::uint64_t
commitHash(const CommitRecord &c)
{
    std::uint64_t h =
        mix64(static_cast<std::uint64_t>(c.proc) + 0x9E3779B97F4A7C15ull);
    h = mix64(h ^ c.seq);
    h = mix64(h ^ c.size);
    h = mix64(h ^ c.accAfter);
    return h;
}

/**
 * Periodic prefix hashes over a commit stream.
 *
 * prefixes[k] is the rolling hash of the first min(k * period, n)
 * commits, chained as h' = mix64(h ^ commitHash(c)). Because each
 * prefix hash is a function of exactly the commits before it, prefix
 * equality between two streams is monotone in k: once two streams
 * disagree at boundary k they disagree at every later boundary. That
 * monotonicity is what lets the divergence localizer binary-search
 * over interval boundaries instead of scanning the whole stream —
 * the software analogue of comparing periodic hardware checkpoints.
 */
struct IntervalFingerprints
{
    std::uint64_t period = 0;
    std::uint64_t totalCommits = 0;
    /// Boundary hashes: index k covers the first min(k*period, total)
    /// commits. Always has ceil(total/period) + 1 entries (a trailing
    /// partial interval gets its own boundary).
    std::vector<std::uint64_t> prefixes;

    static IntervalFingerprints
    build(const ExecutionFingerprint &fp, std::uint64_t period)
    {
        IntervalFingerprints out;
        out.period = period ? period : 1;
        out.totalCommits = fp.commits.size();
        std::uint64_t h = 0x4465744C6F636Bull; // rolling-hash seed
        out.prefixes.push_back(h);
        for (std::uint64_t i = 0; i < out.totalCommits; ++i) {
            h = mix64(h ^ commitHash(fp.commits[i]));
            if ((i + 1) % out.period == 0
                || i + 1 == out.totalCommits)
                out.prefixes.push_back(h);
        }
        return out;
    }

    /** Commits covered by boundary @p k (clamped to the total). */
    std::uint64_t
    coveredAt(std::uint64_t k) const
    {
        const std::uint64_t want = k * period;
        return want < totalCommits ? want : totalCommits;
    }

    /** Boundary hash @p k (clamped: past-the-end = final hash). */
    std::uint64_t
    prefixAt(std::uint64_t k) const
    {
        const std::size_t i = static_cast<std::size_t>(k);
        return i < prefixes.size() ? prefixes[i] : prefixes.back();
    }

    /** Number of boundaries (valid arguments to prefixAt). */
    std::uint64_t
    boundaryCount() const
    {
        return prefixes.size();
    }
};

} // namespace delorean

#endif // DELOREAN_CORE_FINGERPRINT_HPP_
