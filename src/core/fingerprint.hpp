/**
 * @file
 * Execution fingerprint: the evidence used to check determinism.
 *
 * A fingerprint captures the architectural outcome of a chunked
 * execution: the global commit interleaving (one record per *logical*
 * chunk), the per-thread dataflow accumulators and retired counts,
 * and a hash of the final memory image. Replay is deterministic
 * (Appendix B's definition) iff its fingerprint matches.
 *
 * Stratified replay may legally reorder commits of non-conflicting
 * chunks within a stratum, so it is checked with matchesPerProc(),
 * which compares per-processor commit streams and the final state but
 * not the global interleaving.
 */

#ifndef DELOREAN_CORE_FINGERPRINT_HPP_
#define DELOREAN_CORE_FINGERPRINT_HPP_

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace delorean
{

/** One committed logical chunk. */
struct CommitRecord
{
    ProcId proc = 0;
    ChunkSeq seq = 0;       ///< processor-local logical chunk number
    InstrCount size = 0;    ///< total instructions (pieces summed)
    std::uint64_t accAfter = 0; ///< thread accumulator after the chunk

    bool operator==(const CommitRecord &) const = default;
};

/** Architectural outcome of a chunked execution. */
struct ExecutionFingerprint
{
    std::vector<CommitRecord> commits; ///< global commit order
    std::vector<std::uint64_t> perProcAcc;
    std::vector<InstrCount> perProcRetired;
    std::uint64_t finalMemHash = 0;

    /** Exact match: same interleaving, same state. */
    bool
    matchesExact(const ExecutionFingerprint &other) const
    {
        return commits == other.commits && statesMatch(other);
    }

    /**
     * Per-processor match: each processor committed the same chunk
     * stream, and the final state is identical. The global
     * interleaving may differ (stratified replay).
     */
    bool
    matchesPerProc(const ExecutionFingerprint &other) const
    {
        if (!statesMatch(other))
            return false;
        const unsigned n =
            static_cast<unsigned>(perProcAcc.size());
        for (ProcId p = 0; p < n; ++p)
            if (procStream(p) != other.procStream(p))
                return false;
        return true;
    }

    /** This processor's commit stream, in order. */
    std::vector<CommitRecord>
    procStream(ProcId proc) const
    {
        std::vector<CommitRecord> stream;
        for (const auto &c : commits)
            if (c.proc == proc)
                stream.push_back(c);
        return stream;
    }

    /** Single hash summarizing the fingerprint (for quick checks). */
    std::uint64_t
    hash() const
    {
        std::uint64_t h = finalMemHash;
        for (const auto &c : commits) {
            h = mix64(h ^ c.accAfter);
            h = mix64(h ^ (static_cast<std::uint64_t>(c.proc) << 40 ^ c.size));
        }
        for (const auto a : perProcAcc)
            h = mix64(h ^ a);
        return h;
    }

  private:
    bool
    statesMatch(const ExecutionFingerprint &other) const
    {
        return finalMemHash == other.finalMemHash
               && perProcAcc == other.perProcAcc
               && perProcRetired == other.perProcRetired;
    }
};

} // namespace delorean

#endif // DELOREAN_CORE_FINGERPRINT_HPP_
