/**
 * @file
 * ChunkEngine: the DeLorean execution substrate (Sections 3-4).
 *
 * A discrete-event simulation of a BulkSC-style CMP in which every
 * processor continuously executes chunks of instructions atomically
 * and in isolation. One engine instance performs one run — either an
 * initial execution (record) or a replay of a prior Recording.
 *
 * Record:  the arbiter appends committing procIDs to the PI log (or
 *          feeds the Stratifier), processors append CS entries for
 *          non-deterministic truncations (or every chunk size in
 *          Order&Size), and the input logs capture interrupts, I/O
 *          load values and DMA data.
 * Replay:  the arbiter enforces the recorded commit order (PI log,
 *          strata, or the predefined round-robin in PicoLog);
 *          processors truncate chunks according to their CS logs and
 *          take interrupt/I/O/DMA inputs from the logs. Timing
 *          perturbations (Section 6.2.1) are injected to demonstrate
 *          that determinism does not depend on timing.
 */

#ifndef DELOREAN_CORE_ENGINE_HPP_
#define DELOREAN_CORE_ENGINE_HPP_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "chunk/chunk.hpp"
#include "chunk/spec_tracker.hpp"
#include "common/config.hpp"
#include "common/flat_set.hpp"
#include "core/checkpoint.hpp"
#include "core/recording.hpp"
#include "core/replay_observer.hpp"
#include "memory/cache.hpp"
#include "memory/directory.hpp"
#include "memory/memory_state.hpp"
#include "sim/timing_model.hpp"
#include "trace/devices.hpp"
#include "trace/workload.hpp"

namespace delorean
{

/** Replay timing-perturbation knobs (Section 6.2.1). */
struct ReplayPerturbation
{
    bool enabled = false;
    std::uint64_t seed = 0;
    /// Add a random stall before this fraction of commit requests.
    unsigned commitStallPerMille = 300;
    Cycle stallMinCycles = 10;
    Cycle stallMaxCycles = 300;
    /// Swap the latency of this fraction of cache hits/misses.
    unsigned hitMissSwapPerMille = 15;
};

/** Engine role and environment. */
struct EngineOptions
{
    bool replay = false;
    /// Record only: false disables all log writes (the plain BulkSC
    /// machine of Figure 10).
    bool logging = true;
    /// Environment randomness (devices, wrong-path noise); never
    /// architectural.
    std::uint64_t envSeed = 1;
    /// Replay only: virtualization penalty — this arbitration latency
    /// (30 -> 50 cycles in the paper) on every replayed commit.
    Cycle replayArbitrationLatency = 50;
    /// Replay only: lookahead window — number of commit slots the
    /// arbiter may occupy concurrently while retiring chunks in logged
    /// order. 1 fully serializes replay (the paper's virtualized
    /// arbiter); larger windows overlap commit occupancy without
    /// changing the architectural retire order, so the replayed
    /// fingerprint is identical at any width.
    unsigned replayWindow = 1;
    /// Replay only: when the recording carries per-entry shard masks
    /// (format v2, numArbiters > 1), retire chunks under the recorded
    /// *partial* order — per-shard sequence plus per-processor program
    /// order — instead of the logged total order. false forces the
    /// classic total-order cursor (the log's entry sequence is always
    /// a valid linearization of its own partial order, so both
    /// replays produce byte-identical fingerprints). Interval replay
    /// (startCheckpoint/stopCheckpoint) always uses total order.
    bool honorPartialOrder = true;
    ReplayPerturbation perturb;
    /// Event-budget override; 0 keeps the default safety valve. The
    /// validation layer shrinks this so a corrupted log that parks
    /// the replay in a livelock fails in milliseconds, not hours.
    std::uint64_t maxEvents = 0;
    /// Record only: take a SystemCheckpoint when the global commit
    /// count reaches each of these values (ascending).
    std::vector<std::uint64_t> checkpointGccs;
    /// Record only: additionally take a checkpoint every this many
    /// global commits (0 = disabled). Combines with checkpointGccs;
    /// a GCC named by both yields one checkpoint. This is the knob
    /// the archive writer (src/store) uses to define segment cuts.
    std::uint64_t checkpointPeriod = 0;
    /// Replay only: start from this checkpoint instead of the initial
    /// state (interval replay, Appendix B). Works for all modes,
    /// including stratified recordings (checkpoints land on stratum
    /// boundaries by construction).
    const SystemCheckpoint *startCheckpoint = nullptr;
    /// Replay only: stop once the global commit count reaches this
    /// checkpoint's GCC instead of running to program end — the upper
    /// bound of interval replay I(n, m). The outcome fingerprint then
    /// covers exactly the commits in [start, stop) and the
    /// architectural state at the stop checkpoint.
    const SystemCheckpoint *stopCheckpoint = nullptr;
    /// Replay only: analysis plugin receiving every chunk/DMA
    /// retirement in canonical commit order (see replay_observer.hpp).
    /// Borrowed — must outlive the replay. Incompatible with interval
    /// replay (ConfigError): analyses need the full commit history.
    ReplayObserver *observer = nullptr;
    /// Record only: segment-flush hook, invoked on the simulation
    /// thread at the end of every checkpoint, after the checkpoint has
    /// been pushed onto the recording. At that point every log is
    /// complete up to the checkpoint GCC (PI/CS/input appends happen
    /// before the commit's checkpoint test, and for stratified modes
    /// rec.strata is synced to the stratifier before the call), so a
    /// streaming consumer — the archive's StreamingArchiveWriter — can
    /// cut the segment ending at rec.checkpoints.back() while the
    /// simulation continues. The callee must not retain references
    /// into the recording across calls: logs keep growing.
    std::function<void(const Recording &)> onCheckpoint;
};

/** Outcome of a replay run. */
struct ReplayOutcome
{
    ExecutionFingerprint fingerprint;
    EngineStats stats;
    bool deterministicExact = false;
    bool deterministicPerProc = false;
};

/** One chunked-execution run. Single use. */
class ChunkEngine
{
  public:
    ChunkEngine(const Workload &workload, const MachineConfig &machine,
                const ModeConfig &mode, const EngineOptions &options);
    ~ChunkEngine();

    /** Run an initial execution and return its recording. */
    Recording record();

    /** Replay @p prior and check determinism against its fingerprint. */
    ReplayOutcome replay(const Recording &prior);

  private:
    // ----- event machinery ---------------------------------------------
    enum class EvKind : std::uint8_t
    {
        kChunkDone,
        kRequestArrive,
        kCommitFinish,
        kTokenArrive,
        kProcResume,
    };

    struct Event
    {
        Cycle time;
        std::uint64_t order;
        EvKind kind;
        ProcId proc;
        std::uint64_t uid;

        bool
        operator>(const Event &o) const
        {
            return time != o.time ? time > o.time : order > o.order;
        }
    };

    /**
     * Saved parameters for re-executing a squashed chunk. The start
     * context is NOT stored here: squashFrom restores it directly
     * into ProcState::ctx, which nothing mutates until the rebuild
     * (tryStartChunk bails out while a restart is pending), so the
     * squash/restart path performs a single context copy instead of
     * four.
     */
    struct RestartInfo
    {
        ChunkSeq seq = 0;
        bool continuation = false;
        InstrCount pieceTarget = 0;
        unsigned squashCount = 0;
        bool collisionReduced = false;
    };

    /** Extra chunk bookkeeping not in the plain Chunk struct. */
    struct ChunkExtra
    {
        std::uint64_t uid = 0;
        bool continuation = false;
        InstrCount pieceTarget = 0;
        bool collisionReduced = false;
        bool requestArrived = false;
        Cycle requestTime = kNoCycle;
        bool remainderAfter = false; ///< replay split: pieces follow
        /// Shard mask over the chunk's exact read/write line sets,
        /// computed lazily at arbitration (sharded record only).
        std::uint64_t shardMask = 0;
        bool shardMaskValid = false;
        /// Chunks touch tens of lines, so flat sorted-vector sets beat
        /// hashing on every access and recycle their storage.
        FlatSet<Addr> linesWritten;
        FlatSet<Addr> linesRead; ///< exact disambiguation
        /// Cache fills this chunk performed (miss level per line), in
        /// access order. On a mid-execution squash the unreached tail
        /// is rolled back so eager chunk generation cannot act as a
        /// free prefetcher (see squashFrom).
        std::vector<std::pair<Addr, HitLevel>> fills;
        /// Program-order cached-access trace for the replay observer.
        /// Collected only when an observer is attached; wrong-path
        /// noise never enters (it is signature-only).
        std::vector<MemAccess> trace;
    };

    struct EngineChunk : Chunk
    {
        ChunkExtra extra;

        void
        reset()
        {
            Chunk::reset();
            extra.uid = 0;
            extra.continuation = false;
            extra.pieceTarget = 0;
            extra.collisionReduced = false;
            extra.requestArrived = false;
            extra.requestTime = kNoCycle;
            extra.remainderAfter = false;
            extra.shardMask = 0;
            extra.shardMaskValid = false;
            extra.linesWritten.clear();
            extra.linesRead.clear();
            extra.fills.clear();
            extra.trace.clear();
        }
    };

    struct ProcState
    {
        ThreadContext ctx; ///< speculative frontier
        std::deque<std::unique_ptr<EngineChunk>> inflight; ///< oldest first
        ChunkSeq nextSeq = 0;       ///< next logical chunk number
        ChunkSeq irqCheckedSeq = static_cast<ChunkSeq>(-1);
        InstrCount pendingRemainder = 0; ///< replay split leftover
        InstrCount partialSize = 0; ///< committed pieces of current logical
        bool mustContinue = false;  ///< arbiter must finish split chunk
        std::optional<RestartInfo> restart;
        /// Context at the boundary of the last committed chunk and the
        /// number of chunks committed — the ingredients of a
        /// SystemCheckpoint.
        ThreadContext lastCommittedCtx;
        ChunkSeq committedCount = 0;
        bool stalled = false;
        Cycle stallStart = 0;
        bool blockedOnOverflow = false;
        bool finished = false;
        std::uint64_t stallCycles = 0;
        /// Highest logical chunk seq whose boundary has been polled
        /// for interrupts (record side). kNoCycle-like sentinel below.
        /// Interrupts delivered at a seq are remembered in irqBySeq so
        /// that a cascade squash past that boundary re-delivers the
        /// SAME interrupt on rebuild instead of losing it.
        std::unordered_map<ChunkSeq, InterruptRecord> irqBySeq;
        /// Observer replay: accumulated access trace of the committed
        /// pieces of the current logical chunk (split chunks deliver
        /// one merged observation at the final piece).
        std::vector<MemAccess> pendingTrace;
        /// Observer replay: canonical commit position of the logical
        /// chunk being committed, captured when its PI entry is
        /// consumed (first piece) for the flat and partial-order
        /// cursors.
        std::uint64_t obsPos = 0;
    };

    // ----- run ----------------------------------------------------------
    void runLoop();
    void schedule(Cycle time, EvKind kind, ProcId proc, std::uint64_t uid);
    void handleEvent(const Event &ev);

    // ----- chunk lifecycle ----------------------------------------------
    void tryStartChunk(ProcId p, Cycle now);
    void buildChunk(ProcId p, Cycle now);
    void onChunkDone(ProcId p, std::uint64_t uid, Cycle now);
    void squashFrom(ProcId p, std::size_t idx, Cycle now);
    EngineChunk *findChunk(ProcId p, std::uint64_t uid);

    /// Chunk freelist: squashed and committed chunks are recycled so
    /// the build loop stops hitting the allocator (and the recycled
    /// buffers keep their grown capacity).
    std::unique_ptr<EngineChunk> acquireChunk();
    void recycleChunk(std::unique_ptr<EngineChunk> chunk);
    std::vector<std::unique_ptr<EngineChunk>> chunk_pool_;

    // ----- memory access helpers ----------------------------------------
    std::uint64_t chunkLoad(ProcId p, const EngineChunk &chunk,
                            Addr word) const;
    double accessCost(ProcId p, Op op, Addr line, EngineChunk &chunk);

    /** Does a committing write set conflict with @p running? */
    bool conflictsWith(const EngineChunk &running,
                       const std::vector<Addr> &write_lines,
                       const Signature &write_sig);

    // ----- commit fast path ----------------------------------------------
    /// Summary-filtered signature intersection with stats accounting.
    bool sigConflict(const SignaturePair &running,
                     const Signature &write_sig);
    /// Squash every running chunk conflicting with a committed write
    /// set; processors whose in-flight union provably misses the
    /// write signature are skipped without walking their chunks.
    void sweepConflicts(ProcId committing, const std::vector<Addr> &wlines,
                        const Signature &wsig, Cycle now);
    void noteChunkInflight(ProcId p, const EngineChunk &chunk);
    void rebuildProcUnion(ProcId p);

    /// Summary-filter policy. DELOREAN_SUMMARY_FILTER=on forces the
    /// filter, =off (or the original DELOREAN_NO_SUMMARY_FILTER=1
    /// escape hatch) falls back to full word-level intersections and
    /// per-chunk sweeps, and unset runs the adaptive policy: probe
    /// windows of commit sweeps measure the summary reject rate and
    /// the union sweep-skip rate, and the filter is dropped while the
    /// workload's conflict profile makes its prechecks pure overhead
    /// (summaries almost always intersecting), re-probing periodically
    /// in case the profile shifts. Never architectural: the recording
    /// is byte-identical under every policy.
    enum class FilterMode : std::uint8_t
    {
        kAdaptive,
        kForceOn,
        kForceOff,
    };
    FilterMode filter_mode_ = FilterMode::kAdaptive;
    /// Current filter state (fixed for forced modes).
    bool summary_filter_ = true;
    /// Adaptive bookkeeping: sweeps observed in the open probe window,
    /// counter snapshots at its start, and sweeps spent filtered off.
    std::uint64_t filter_window_sweeps_ = 0;
    std::uint64_t filter_window_hits_ = 0;
    std::uint64_t filter_window_rejects_ = 0;
    std::uint64_t filter_window_skips_ = 0;
    std::uint64_t filter_off_sweeps_ = 0;
    void maybeAdaptFilter();
    /// Sweeps per probe window; small so a filter-hostile workload
    /// sheds the overhead early in the run.
    static constexpr std::uint64_t kFilterProbeWindow = 128;
    /// Sweeps spent unfiltered before probing again.
    static constexpr std::uint64_t kFilterReprobePeriod = 4096;
    /// Per-processor OR of that processor's in-flight chunk R and W
    /// signatures. Exact over the live window: rebuilt whenever
    /// chunks leave it (commit pop or squash), which is cheap because
    /// a processor holds at most a handful of simultaneous chunks and
    /// clear() is an epoch bump.
    std::vector<Signature> proc_unions_;

    // ----- arbiter -------------------------------------------------------
    void arbiterProcess(Cycle now);
    EngineChunk *oldestReady(ProcId p);
    EngineChunk *pickCandidate(Cycle now, ProcId &out_proc);
    void grantChunk(ProcId p, Cycle now);
    void grantDma(Cycle now);
    bool dmaDueForReplay() const;
    void checkDma(Cycle now);
    unsigned freeSlots(Cycle now) const;
    unsigned busySlots(Cycle now) const;
    void onTokenArrive(ProcId p, Cycle now);
    void tokenTry(Cycle now);
    void passToken(ProcId p, Cycle now);
    bool dmaIsNext(Cycle now) const;
    bool anyMustContinue() const;
    unsigned countReadyProcs() const;
    bool allFinished() const;

    // ----- sharded arbiter hierarchy -------------------------------------
    /// True when this record run commits through per-shard arbiters
    /// (numArbiters > 1; PicoLog keeps its token-serialized pool).
    bool shardedRecord() const { return !shard_slot_busy_.empty(); }
    /// Shard mask of a chunk's exact read/write line sets (cached).
    std::uint64_t chunkShardMask(EngineChunk &c) const;
    /// Shard mask of a DMA transfer's written lines.
    std::uint64_t dmaShardMask(const DmaTransfer &xfer) const;
    /// Can a commit with @p mask occupy its shard slots now? A
    /// single-shard commit needs one free slot in its home shard; a
    /// cross-shard commit additionally serializes through the root
    /// arbiter and needs a slot in every member shard.
    bool canOccupyShards(std::uint64_t mask, Cycle now) const;
    void occupyShards(std::uint64_t mask, Cycle now, Cycle occupancy);

    // ----- configuration / state ----------------------------------------
    const Workload &workload_;
    MachineConfig machine_;
    ModeConfig mode_;
    EngineOptions opts_;
    unsigned n_;

    MemoryState mem_;
    CacheHierarchy caches_;
    Directory dir_;
    TimingModel timing_;
    Xoshiro256ss env_rng_;
    Xoshiro256ss perturb_rng_;

    InterruptSource irq_;
    DmaEngine dma_dev_;
    IoDevice io_dev_;

    std::vector<ProcState> procs_;
    std::vector<SpecTracker> spec_; ///< one per processor
    ThreadContext scratch_pre_ctx_; ///< reusable pre-instruction snapshot

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;
    std::uint64_t event_order_ = 0;
    std::uint64_t next_uid_ = 1;
    Cycle last_time_ = 0;

    // arbiter
    std::vector<Cycle> slot_busy_until_;
    /// Sharded record: per-shard commit-slot pools (numArbiters > 1,
    /// non-PicoLog). Empty = single global arbiter (slot_busy_until_).
    std::vector<std::vector<Cycle>> shard_slot_busy_;
    /// Sharded record: the thin root arbiter's single slot, occupied
    /// by cross-shard commits for their occupancy duration.
    Cycle root_slot_busy_ = 0;
    unsigned shards_ = 1; ///< machine_.bulk.numArbiters
    std::uint64_t gcc_ = 0; ///< global (logical) chunk commit count
    /// Replay: set when gcc_ reaches opts_.stopCheckpoint->gcc; the
    /// event loop exits instead of draining to program end.
    bool stopped_ = false;
    /// Replay: cycle at which the arbiter last found a completed chunk
    /// it could not grant because the log head names another processor
    /// (kNoCycle = not stalled). Accumulated into
    /// EngineStats::replayHeadStallCycles at the next grant.
    Cycle head_stall_since_ = kNoCycle;
    // PicoLog record token
    ProcId token_proc_ = 0;
    Cycle token_arrive_time_ = 0;
    bool token_in_transit_ = true;
    bool token_waiting_for_chunk_ = false;
    bool token_waiting_for_slot_ = false;
    Cycle token_round_start_ = kNoCycle;
    // PicoLog replay round-robin pointer
    ProcId rr_next_ = 0;
    // record: pending DMA transfers awaiting a commit slot
    std::deque<DmaTransfer> dma_pending_;
    std::size_t dma_granted_ = 0; ///< transfers committed so far
    std::size_t next_checkpoint_ = 0; ///< index into checkpointGccs
    void maybeCheckpoint();
    InstrCount generated_instrs_ = 0; ///< device-clock proxy

    // record outputs / replay inputs
    Recording *rec_ = nullptr;
    const Recording *prior_ = nullptr;
    std::unique_ptr<Stratifier> stratifier_;
    std::unique_ptr<PiLogCursor> pi_cursor_;
    /// Partial-order replay over a masked (v2) PI log; replaces
    /// pi_cursor_ when active. Null in all other configurations.
    std::unique_ptr<PartialOrderCursor> po_cursor_;
    /// Partial-order replay: fingerprint slot of the PI entry each
    /// processor most recently consumed, so split chunks write their
    /// CommitRecord positionally at the final piece.
    std::vector<std::size_t> po_fp_pos_;
    std::unique_ptr<StrataCursor> strata_cursor_;
    std::size_t dma_replay_idx_ = 0;
    /// Replay observer plumbing: re-sequencing hub plus, for
    /// stratified replays (whose intra-stratum retire order is
    /// timing-dependent), the precomputed canonical positions.
    std::unique_ptr<ObserverHub> obs_hub_;
    std::unique_ptr<StrataCanonicalOrder> strata_order_;
    /// Replay: per-processor CS entries keyed by logical chunk number.
    /// Chunks are built ahead of commits, so a sequential cursor would
    /// misalign; lookup by seq is also squash-rebuild safe.
    std::vector<std::unordered_map<ChunkSeq, CsEntry>> cs_lookup_;

    ExecutionFingerprint fp_;
    EngineStats stats_;
    bool ran_ = false;

    Cycle arbLatency() const;
    Cycle commitLatency() const { return 30; }
    static constexpr Cycle kTokenHop = 25;
    static constexpr Cycle kSquashPenalty = 20;
    static constexpr double kSpecialSysCost = 50.0;
};

} // namespace delorean

#endif // DELOREAN_CORE_ENGINE_HPP_
