/**
 * @file
 * System checkpointing (Figure 2) and interval replay (Appendix B).
 *
 * The paper assumes checkpoint support such as ReVive or SafetyNet and
 * proves: *assuming a system checkpoint was taken at GCC = n, DeLorean
 * can deterministically replay the execution interval I(n, m)*. A
 * SystemCheckpoint captures the architectural state of the machine at
 * a global commit count: the committed memory image, each thread's
 * context as of its last committed chunk, and the log positions needed
 * to resume consuming the recording mid-stream.
 *
 * Checkpoints are only meaningful at commit boundaries — exactly where
 * chunk-based machines take them for free, since every chunk commit
 * already is a processor checkpoint.
 */

#ifndef DELOREAN_CORE_CHECKPOINT_HPP_
#define DELOREAN_CORE_CHECKPOINT_HPP_

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "memory/memory_state.hpp"
#include "trace/thread_context.hpp"

namespace delorean
{

/** Architectural machine state at a global commit count. */
struct SystemCheckpoint
{
    /// Global commit count (GCC) this checkpoint corresponds to:
    /// the state after the first `gcc` commits of the recording.
    std::uint64_t gcc = 0;

    /// Committed memory image.
    MemoryState memory;

    /// Per-processor context at the boundary of its last committed
    /// chunk (the thread's complete architectural state).
    std::vector<ThreadContext> contexts;

    /// Chunks committed per processor so far (the next logical chunk
    /// sequence number each processor will execute).
    std::vector<ChunkSeq> committedChunks;

    /// DMA transfers consumed so far.
    std::size_t dmaConsumed = 0;

    /// PicoLog: the processor whose commit turn is next.
    ProcId rrNext = 0;

    bool
    valid() const
    {
        return !contexts.empty()
               && contexts.size() == committedChunks.size();
    }
};

/**
 * Evenly spaced checkpoint GCCs for an execution expected to commit
 * about @p expected_commits chunks: every @p period commits, starting
 * at @p period (GCC 0 is the initial state and needs no checkpoint).
 * Feed the result to EngineOptions::checkpointGccs so interval replay
 * and the divergence localizer have boundaries to anchor on.
 */
inline std::vector<std::uint64_t>
periodicCheckpointGccs(std::uint64_t expected_commits,
                       std::uint64_t period)
{
    std::vector<std::uint64_t> gccs;
    if (period == 0)
        return gccs;
    for (std::uint64_t g = period; g <= expected_commits; g += period)
        gccs.push_back(g);
    return gccs;
}

} // namespace delorean

#endif // DELOREAN_CORE_CHECKPOINT_HPP_
