/**
 * @file
 * Recording bundle: everything a DeLorean recording produces, plus
 * the statistics the evaluation section reports.
 */

#ifndef DELOREAN_CORE_RECORDING_HPP_
#define DELOREAN_CORE_RECORDING_HPP_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "compress/lz77.hpp"
#include "core/checkpoint.hpp"
#include "core/cs_log.hpp"
#include "core/fingerprint.hpp"
#include "core/input_logs.hpp"
#include "core/pi_log.hpp"
#include "core/stratifier.hpp"
#include "memory/directory.hpp"

namespace delorean
{

/** Engine statistics (backs Figures 10-12 and Table 6). */
struct EngineStats
{
    Cycle totalCycles = 0;
    InstrCount retiredInstrs = 0;   ///< committed instructions
    InstrCount executedInstrs = 0;  ///< including squashed work
    /// Every dynamic instruction the generators produced, including
    /// squashed and re-executed work — the "simulated instructions"
    /// denominator for harness throughput (instrs/sec).
    InstrCount generatedInstrs = 0;
    /// Host wall-clock seconds the run took (record or replay). Not
    /// architectural: never part of fingerprints or serialized logs.
    double wallSeconds = 0.0;
    std::uint64_t committedChunks = 0;
    std::uint64_t squashes = 0;
    std::uint64_t overflowTruncations = 0;
    std::uint64_t collisionTruncations = 0;
    std::uint64_t hardTruncations = 0; ///< I/O, special instructions
    std::uint64_t replaySplitChunks = 0; ///< unexpected-overflow splits

    // --- commit fast path (arbiter conflict filtering) -----------------
    /// Signature pairs whose per-bank summaries intersected, forcing
    /// the full word walk.
    std::uint64_t sigSummaryHits = 0;
    /// Signature pairs rejected by the summary filter alone — full
    /// 2048-bit intersections avoided.
    std::uint64_t sigSummaryRejects = 0;
    /// Commit-time conflict sweeps that walked no processor: every
    /// per-processor in-flight union missed the write signature (or
    /// the other processors were idle).
    std::uint64_t unionSweepSkips = 0;
    /// Commit-time conflict sweeps that did walk running chunks.
    std::uint64_t conflictSweeps = 0;
    /// Adaptive summary filter: probe windows that measured the
    /// filter as pure overhead and dropped it (see
    /// ChunkEngine::maybeAdaptFilter). Always 0 under the forced
    /// DELOREAN_SUMMARY_FILTER=on/off policies.
    std::uint64_t sigFilterDeactivations = 0;
    /// Same-cycle arbiter wakeups merged into one drain pass.
    std::uint64_t arbiterWakeupsCoalesced = 0;

    // --- sharded arbiter hierarchy (numArbiters > 1) --------------------
    /// Commits whose shard mask named a single shard — granted by that
    /// shard's arbiter alone.
    std::uint64_t shardLocalCommits = 0;
    /// Commits spanning shards — serialized through the root arbiter.
    std::uint64_t crossShardCommits = 0;
    /// Partial-order replay: grants that consumed a PI entry other
    /// than the smallest unconsumed one — retires the recorded edges
    /// permitted but a total-order replay would have stalled on.
    std::uint64_t poRelaxedRetires = 0;
    /// 64-bit accumulator spills across the PI and CS log writers.
    std::uint64_t logWordFlushes = 0;

    /// Cycles processors spent stalled with all simultaneous chunks
    /// completed but uncommitted (Table 6 "Stall Cycles").
    std::vector<std::uint64_t> perProcStallCycles;

    // --- chunk-parallel replay (lookahead window) ----------------------
    /// Commit slots busy at each replayed grant — how much of the
    /// lookahead window the replay actually used.
    RunningStat replayWindowOccupancy;
    /// Cycles a completed chunk sat ready while the log head named a
    /// processor whose chunk was still executing (the serialization
    /// cost the window cannot remove).
    std::uint64_t replayHeadStallCycles = 0;
    /// Stratified replay: commits retired while another processor
    /// still had budget in the same stratum — commits that exploited
    /// the intra-stratum (conflict-free) ordering freedom.
    std::uint64_t strataRelaxedRetires = 0;

    // --- PicoLog commit-token statistics (Table 6) ---------------------
    RunningStat readyProcsAtCommit; ///< procs with a ready chunk
    RunningStat parallelCommits;    ///< commits overlapping at initiation
    std::uint64_t tokenArrivalsReady = 0;
    std::uint64_t tokenArrivalsNotReady = 0;
    RunningStat waitForTokenCycles;    ///< ready: completion -> token
    RunningStat waitForCompleteCycles; ///< not ready: token -> completion
    RunningStat tokenRoundtripCycles;

    TrafficStats traffic;

    /** Fraction of total machine cycles spent stalled. */
    double
    stallFraction() const
    {
        if (!totalCycles || perProcStallCycles.empty())
            return 0.0;
        std::uint64_t sum = 0;
        for (const auto s : perProcStallCycles)
            sum += s;
        return static_cast<double>(sum)
               / (static_cast<double>(totalCycles)
                  * static_cast<double>(perProcStallCycles.size()));
    }

    /** Percentage of token arrivals that found the processor ready. */
    double
    procReadyPercent() const
    {
        const std::uint64_t total =
            tokenArrivalsReady + tokenArrivalsNotReady;
        return total ? 100.0 * static_cast<double>(tokenArrivalsReady)
                           / static_cast<double>(total)
                     : 0.0;
    }

    /** Simulated cycles per host wall-clock second. */
    double
    simCyclesPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(totalCycles) / wallSeconds
                   : 0.0;
    }

    /** Simulated (generated) instructions per host wall-clock second. */
    double
    simInstrsPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(generatedInstrs) / wallSeconds
                   : 0.0;
    }
};

/** Raw and LZ77-compressed sizes of one log. */
struct LogSize
{
    std::uint64_t rawBits = 0;
    std::uint64_t compressedBits = 0;
};

/** Memory-ordering log sizes of a recording. */
struct LogSizeReport
{
    LogSize pi;          ///< PI log (or stratified PI log if enabled)
    LogSize cs;          ///< all CS logs combined
    InstrCount retiredInstrs = 0;
    unsigned numProcs = 1;

    /** Paper metric: bits per processor per kilo-instruction. */
    double
    bitsPerProcPerKiloInstr(bool compressed) const
    {
        // retiredInstrs counts all processors, so dividing by total
        // kilo-instructions already yields a per-processor figure.
        const double kilo_instrs =
            static_cast<double>(retiredInstrs) / 1000.0;
        const double bits = static_cast<double>(
            compressed ? pi.compressedBits + cs.compressedBits
                       : pi.rawBits + cs.rawBits);
        return kilo_instrs > 0 ? bits / kilo_instrs : 0.0;
    }

    double
    piBitsPerProcPerKiloInstr(bool compressed) const
    {
        const double kilo_instrs =
            static_cast<double>(retiredInstrs) / 1000.0;
        const double bits = static_cast<double>(
            compressed ? pi.compressedBits : pi.rawBits);
        return kilo_instrs > 0 ? bits / kilo_instrs : 0.0;
    }

    double
    csBitsPerProcPerKiloInstr(bool compressed) const
    {
        const double kilo_instrs =
            static_cast<double>(retiredInstrs) / 1000.0;
        const double bits = static_cast<double>(
            compressed ? cs.compressedBits : cs.rawBits);
        return kilo_instrs > 0 ? bits / kilo_instrs : 0.0;
    }
};

/** Everything produced by recording one execution. */
struct Recording
{
    MachineConfig machine;
    ModeConfig mode;
    std::string appName;
    std::uint64_t workloadSeed = 0;
    unsigned iterationsPercent = 100;

    PiLog pi{8};
    std::vector<Stratum> strata; ///< filled when mode.stratify... != 0
    std::vector<CsLog> cs;       ///< one per processor
    InterruptLog interrupts{8};
    IoLog io{8};
    DmaLog dma;

    ExecutionFingerprint fingerprint;
    EngineStats stats;

    /// System checkpoints taken during recording (Figure 2), at the
    /// GCC values requested through EngineOptions::checkpointGccs.
    std::vector<SystemCheckpoint> checkpoints;

    bool stratified() const { return mode.stratifyChunksPerProc != 0; }

    /**
     * Expected fingerprint of the interval I(gcc, end): the commits
     * after the first @p gcc, plus the (final) end-of-run state. Used
     * to validate interval replay from a checkpoint (Appendix B).
     */
    ExecutionFingerprint
    fingerprintFrom(std::uint64_t gcc) const
    {
        ExecutionFingerprint fp = fingerprint;
        fp.commits.erase(fp.commits.begin(),
                         fp.commits.begin()
                             + static_cast<long>(std::min<std::size_t>(
                                 gcc - dmaCommitsBefore(gcc),
                                 fp.commits.size())));
        return fp;
    }

    /**
     * Expected fingerprint of I(ckpt.gcc, end), derived from the
     * checkpoint's own per-processor commit counts instead of a PI-log
     * scan — the count of chunk commits before the boundary is
     * sum(committedChunks), for every mode (including stratified
     * recordings, whose PI log has no per-commit entries).
     */
    ExecutionFingerprint
    fingerprintFromCheckpoint(const SystemCheckpoint &ckpt) const
    {
        std::uint64_t chunk_commits = 0;
        for (const ChunkSeq c : ckpt.committedChunks)
            chunk_commits += c;
        ExecutionFingerprint fp = fingerprint;
        fp.commits.erase(fp.commits.begin(),
                         fp.commits.begin()
                             + static_cast<long>(std::min<std::size_t>(
                                 chunk_commits, fp.commits.size())));
        return fp;
    }

    /**
     * Expected fingerprint of the bounded interval I(from, to): the
     * chunk commits between the two checkpoints, with the final state
     * (per-thread acc/retired and memory hash) taken from @p to.
     * @p from may be null for an interval starting at GCC 0.
     */
    ExecutionFingerprint
    fingerprintBetween(const SystemCheckpoint *from,
                       const SystemCheckpoint &to) const
    {
        std::uint64_t lo = 0;
        if (from)
            for (const ChunkSeq c : from->committedChunks)
                lo += c;
        std::uint64_t hi = 0;
        for (const ChunkSeq c : to.committedChunks)
            hi += c;
        lo = std::min<std::uint64_t>(lo, fingerprint.commits.size());
        hi = std::min<std::uint64_t>(hi, fingerprint.commits.size());
        ExecutionFingerprint fp;
        fp.commits.assign(fingerprint.commits.begin()
                              + static_cast<long>(lo),
                          fingerprint.commits.begin()
                              + static_cast<long>(std::max(lo, hi)));
        for (const ThreadContext &ctx : to.contexts) {
            fp.perProcAcc.push_back(ctx.acc);
            fp.perProcRetired.push_back(ctx.retired);
        }
        fp.finalMemHash = to.memory.hash();
        return fp;
    }

    /** DMA commits among the first @p gcc global commits. */
    std::size_t
    dmaCommitsBefore(std::uint64_t gcc) const
    {
        if (mode.mode == ExecMode::kPicoLog) {
            std::size_t n = 0;
            for (std::size_t i = 0; i < dma.count(); ++i)
                n += dma.slotAt(i) < gcc;
            return n;
        }
        std::size_t n = 0;
        for (std::size_t i = 0; i < std::min<std::size_t>(
                                    gcc, pi.entryCount());
             ++i)
            n += pi.entryAt(i) == kDmaProcId;
        return n;
    }

    /** Measure raw + compressed memory-ordering log sizes. */
    LogSizeReport
    logSizes() const
    {
        const Lz77 codec;
        LogSizeReport report;
        report.retiredInstrs = stats.retiredInstrs;
        report.numProcs = machine.numProcs;

        if (mode.mode != ExecMode::kPicoLog) {
            if (stratified()) {
                Stratifier packer(machine.numProcs,
                                  mode.stratifyChunksPerProc);
                // Recompute packing from stored strata.
                std::uint64_t raw = 0;
                BitWriter writer;
                for (const auto &s : strata) {
                    for (const auto c : s.counts) {
                        writer.write(c, packer.counterBits());
                        raw += packer.counterBits();
                    }
                }
                report.pi.rawBits = raw;
                report.pi.compressedBits =
                    codec.compressedBits(writer.bytes());
            } else {
                report.pi.rawBits = pi.sizeBits();
                report.pi.compressedBits =
                    codec.compressedBits(pi.packedBytes());
            }
        }

        for (const auto &log : cs) {
            report.cs.rawBits += log.sizeBits();
            report.cs.compressedBits +=
                codec.compressedBits(log.packedBytes());
        }
        return report;
    }
};

} // namespace delorean

#endif // DELOREAN_CORE_RECORDING_HPP_
