/**
 * @file
 * Umbrella header: the full public API of the DeLorean library.
 *
 * DeLorean (Montesinos, Ceze, Torrellas — ISCA 2008) is a scheme for
 * recording and deterministically replaying shared-memory
 * multiprocessor execution by executing instructions in atomic chunks
 * and logging only the chunk commit order.
 *
 * Layering (bottom up):
 *  - common/    types, RNG, bitstreams, stats, configuration
 *  - compress/  LZ77 log compression
 *  - signature/ Bulk-style address signatures
 *  - memory/    memory state, caches, directory
 *  - trace/     synthetic workloads and device models
 *  - sim/       timing model and RC/SC baseline executors
 *  - chunk/     chunk and speculative-line primitives
 *  - core/      the DeLorean engine, logs, recorder and replayer
 *  - baselines/ FDR / RTR / Strata reference recorders
 */

#ifndef DELOREAN_CORE_DELOREAN_HPP_
#define DELOREAN_CORE_DELOREAN_HPP_

#include "common/config.hpp"
#include "common/types.hpp"
#include "core/cs_log.hpp"
#include "core/engine.hpp"
#include "core/fingerprint.hpp"
#include "core/input_logs.hpp"
#include "core/pi_log.hpp"
#include "core/recorder.hpp"
#include "core/recording.hpp"
#include "core/stratifier.hpp"
#include "sim/interleaved_executor.hpp"
#include "trace/app_profile.hpp"
#include "trace/workload.hpp"

#endif // DELOREAN_CORE_DELOREAN_HPP_
