/**
 * @file
 * Recorder / Replayer facades: the public entry points of DeLorean.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   Workload w("radix", 8, seed);
 *   Recorder recorder(ModeConfig::orderOnly());
 *   Recording rec = recorder.record(w, env_seed);
 *
 *   Replayer replayer;
 *   ReplayOutcome out = replayer.replay(rec, different_env_seed);
 *   assert(out.deterministicExact);
 */

#ifndef DELOREAN_CORE_RECORDER_HPP_
#define DELOREAN_CORE_RECORDER_HPP_

#include "common/config.hpp"
#include "core/engine.hpp"
#include "core/recording.hpp"
#include "trace/workload.hpp"

namespace delorean
{

/** Records chunked executions under a given mode configuration. */
class Recorder
{
  public:
    explicit Recorder(const ModeConfig &mode,
                      const MachineConfig &machine = MachineConfig{})
        : mode_(mode), machine_(machine)
    {
    }

    /**
     * Record one initial execution of @p workload.
     * @param env_seed environment (device/noise) randomness
     * @param logging false runs the plain BulkSC machine (no logs)
     * @param checkpoint_gccs take a SystemCheckpoint at each of these
     *        global commit counts (ascending), for interval replay
     * @param checkpoint_period additionally checkpoint every this many
     *        global commits (0 = off) — the archive segment period
     * @param on_checkpoint segment-flush hook, fired on the recording
     *        thread after every checkpoint with the in-progress
     *        recording (EngineOptions::onCheckpoint) — this is how a
     *        StreamingArchiveWriter overlaps archive compression and
     *        I/O with the rest of the simulation
     */
    Recording
    record(const Workload &workload, std::uint64_t env_seed,
           bool logging = true,
           std::vector<std::uint64_t> checkpoint_gccs = {},
           std::uint64_t checkpoint_period = 0,
           std::function<void(const Recording &)> on_checkpoint = {}) const
    {
        EngineOptions opts;
        opts.replay = false;
        opts.logging = logging;
        opts.envSeed = env_seed;
        opts.checkpointGccs = std::move(checkpoint_gccs);
        opts.checkpointPeriod = checkpoint_period;
        opts.onCheckpoint = std::move(on_checkpoint);
        ChunkEngine engine(workload, machine_, mode_, opts);
        Recording rec = engine.record();
        rec.iterationsPercent = workload.iterationsPercent();
        return rec;
    }

    const ModeConfig &mode() const { return mode_; }
    const MachineConfig &machine() const { return machine_; }

  private:
    ModeConfig mode_;
    MachineConfig machine_;
};

/** Replays recordings, optionally under timing perturbation. */
class Replayer
{
  public:
    /**
     * Replay @p recording. The workload is reconstructed from the
     * recording's metadata; @p env_seed seeds the (non-architectural)
     * environment so replay timing differs from the initial run.
     * @p replay_window sets EngineOptions::replayWindow — commit
     * slots the replay arbiter may overlap (1 = serial replay).
     */
    ReplayOutcome
    replay(const Recording &recording, std::uint64_t env_seed,
           const ReplayPerturbation &perturb = {},
           unsigned replay_window = 1) const
    {
        Workload workload(recording.appName, recording.machine.numProcs,
                          recording.workloadSeed,
                          WorkloadScale{recording.iterationsPercent});
        return replay(recording, workload, env_seed, perturb,
                      replay_window);
    }

    /** Replay with an explicitly provided (matching) workload. */
    ReplayOutcome
    replay(const Recording &recording, const Workload &workload,
           std::uint64_t env_seed,
           const ReplayPerturbation &perturb = {},
           unsigned replay_window = 1) const
    {
        EngineOptions opts;
        opts.replay = true;
        opts.envSeed = env_seed;
        opts.perturb = perturb;
        opts.replayWindow = replay_window;
        ChunkEngine engine(workload, recording.machine, recording.mode,
                           opts);
        return engine.replay(recording);
    }

    /**
     * Interval replay (Appendix B): resume from checkpoint
     * @p checkpoint_index of the recording and replay the interval
     * from that GCC to the end of the recording — or, when @p stop is
     * given, only up to that later checkpoint's GCC. Determinism is
     * checked against the corresponding slice of the recorded
     * fingerprint.
     */
    ReplayOutcome
    replayInterval(const Recording &recording,
                   std::size_t checkpoint_index,
                   const Workload &workload, std::uint64_t env_seed,
                   const ReplayPerturbation &perturb = {},
                   const SystemCheckpoint *stop = nullptr) const
    {
        EngineOptions opts;
        opts.replay = true;
        opts.envSeed = env_seed;
        opts.perturb = perturb;
        opts.startCheckpoint =
            &recording.checkpoints.at(checkpoint_index);
        opts.stopCheckpoint = stop;
        ChunkEngine engine(workload, recording.machine, recording.mode,
                           opts);
        return engine.replay(recording);
    }
};

} // namespace delorean

#endif // DELOREAN_CORE_RECORDER_HPP_
