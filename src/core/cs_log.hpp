/**
 * @file
 * Chunk Size (CS) log, one per processor.
 *
 * Entry formats follow Tables 3 and 5:
 *  - Order&Size: one entry per committed chunk — 1 bit if the chunk
 *    has the maximum size, else a 0 bit followed by an 11-bit size
 *    (12 bits total).
 *  - OrderOnly / PicoLog: one entry per NON-deterministically
 *    truncated chunk — a "distance" field (number of chunks committed
 *    by this processor since its previous truncated chunk) plus the
 *    truncated size. 21+11 bits in OrderOnly, 22+10 in PicoLog.
 */

#ifndef DELOREAN_CORE_CS_LOG_HPP_
#define DELOREAN_CORE_CS_LOG_HPP_

#include <cstdint>
#include <vector>

#include "common/bitstream.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

namespace delorean
{

/** One CS record (normalized; bit packing happens on demand). */
struct CsEntry
{
    ChunkSeq seq = 0;    ///< processor-local logical chunk number
    InstrCount size = 0; ///< committed size in instructions
    bool maxSize = false; ///< Order&Size: chunk hit the size limit
};

/** Per-processor CS log. */
class CsLog
{
  public:
    explicit CsLog(const ModeConfig &mode) : mode_(mode) {}

    /**
     * Order&Size: record the size of every committed chunk.
     * @param is_max true if the chunk reached the maximum size
     */
    void
    appendCommittedSize(ChunkSeq seq, InstrCount size, bool is_max)
    {
        entries_.push_back(CsEntry{seq, size, is_max});
        pack(entries_.back());
    }

    /**
     * OrderOnly/PicoLog: record a non-deterministic truncation of
     * logical chunk @p seq at @p size instructions.
     */
    void
    appendTruncation(ChunkSeq seq, InstrCount size)
    {
        entries_.push_back(CsEntry{seq, size, false});
        pack(entries_.back());
    }

    const std::vector<CsEntry> &entries() const { return entries_; }
    std::size_t entryCount() const { return entries_.size(); }

    /** Log size in bits under this mode's entry format. */
    std::uint64_t sizeBits() const;

    /** Bit-packed image for compression measurement. */
    const std::vector<std::uint8_t> &packedBytes() const;

    /** Accumulator spills performed by the packed writer. */
    std::uint64_t wordFlushes() const { return packed_.wordFlushes(); }

    const ModeConfig &mode() const { return mode_; }

  private:
    /// Bit-pack one entry as it is appended (format is a pure
    /// function of the mode), so packedBytes() is O(1) per call.
    void pack(const CsEntry &entry);

    ModeConfig mode_;
    std::vector<CsEntry> entries_;
    BitWriter packed_;
    ChunkSeq last_trunc_ = 0; ///< distance-encoding reference point
};

/**
 * Replay-side cursor over truncation entries (OrderOnly/PicoLog).
 * peek() lets the engine re-check the same entry after a squash;
 * consume() advances once the logical chunk has fully committed.
 */
class CsLogCursor
{
  public:
    explicit CsLogCursor(const CsLog &log) : log_(&log) {}

    bool atEnd() const { return pos_ >= log_->entryCount(); }

    const CsEntry &peek() const { return log_->entries()[pos_]; }

    /** True if the next truncation applies to logical chunk @p seq. */
    bool
    appliesTo(ChunkSeq seq) const
    {
        return !atEnd() && peek().seq == seq;
    }

    void consume() { ++pos_; }

  private:
    const CsLog *log_;
    std::size_t pos_ = 0;
};

} // namespace delorean

#endif // DELOREAN_CORE_CS_LOG_HPP_
