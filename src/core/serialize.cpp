#include "core/serialize.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/errors.hpp"
#include "core/serialize_detail.hpp"
#include "trace/app_profile.hpp"

namespace delorean
{

using serialize_detail::getCheckpoint;
using serialize_detail::getContext;
using serialize_detail::getMachine;
using serialize_detail::getMode;
using serialize_detail::getString;
using serialize_detail::getU64;
using serialize_detail::putCheckpoint;
using serialize_detail::putContext;
using serialize_detail::putMachine;
using serialize_detail::putMode;
using serialize_detail::putString;
using serialize_detail::putU64;

namespace
{

constexpr std::uint64_t kMagic = 0x44654C6F5265634Full; // "DeLoRecO"
/// v2 (sharded arbitration): numArbiters joins the machine header and
/// the PI section gains a has-masks flag plus optional per-entry shard
/// masks. v1 total-order recordings still load (numArbiters = 1, no
/// mask section).
constexpr std::uint32_t kVersion = 2;

/** Throw RecordingFormatError unless cond; @p what names the field. */
void
require(bool cond, const std::string &what)
{
    if (!cond)
        throw RecordingFormatError(what);
}

/**
 * Field-range checks for the machine/mode headers. Run before the
 * loader allocates anything sized by these fields, so a corrupted
 * header cannot drive a huge allocation, a division by zero in the
 * cache geometry, or an out-of-range shift in the directory's 64-bit
 * sharer masks.
 */
void
validateConfigs(const MachineConfig &m, const ModeConfig &mode)
{
    require(m.numProcs >= 1 && m.numProcs <= 64,
            "numProcs " + std::to_string(m.numProcs)
                + " outside [1, 64]");
    require(m.mem.l1Ways >= 1 && m.mem.l2Ways >= 1,
            "cache associativity must be at least 1");
    require(m.mem.l1SizeBytes / kLineBytes / m.mem.l1Ways >= 1,
            "L1 smaller than one set");
    require(m.mem.l2SizeBytes / kLineBytes / m.mem.l2Ways >= 1,
            "L2 smaller than one set");
    require(m.bulk.maxConcurrentCommits >= 1
                && m.bulk.maxConcurrentCommits <= 1024,
            "maxConcurrentCommits outside [1, 1024]");
    require(m.bulk.simultaneousChunks >= 1
                && m.bulk.simultaneousChunks <= 1024,
            "simultaneousChunks outside [1, 1024]");
    require(m.bulk.collisionBackoffThreshold >= 1,
            "collisionBackoffThreshold must be at least 1");
    require(m.bulk.numArbiters >= 1 && m.bulk.numArbiters <= 64
                && (m.bulk.numArbiters & (m.bulk.numArbiters - 1)) == 0,
            "numArbiters " + std::to_string(m.bulk.numArbiters)
                + " is not a power of two in [1, 64]");

    require(mode.mode == ExecMode::kOrderAndSize
                || mode.mode == ExecMode::kOrderOnly
                || mode.mode == ExecMode::kPicoLog,
            "unknown execution mode");
    require(mode.chunkSize >= 1 && mode.chunkSize <= (1u << 30),
            "chunkSize outside [1, 2^30]");
    require(mode.varSizeTruncatePercent <= 100,
            "varSizeTruncatePercent above 100");
    require(mode.csDistanceBits >= 1 && mode.csDistanceBits <= 64,
            "csDistanceBits outside [1, 64]");
    require(mode.csSizeBits >= 1 && mode.csSizeBits <= 64,
            "csSizeBits outside [1, 64]");
    require(mode.piProcIdBits >= 1 && mode.piProcIdBits <= 32,
            "piProcIdBits outside [1, 32]");
    require(mode.stratifyChunksPerProc <= 255,
            "stratifyChunksPerProc above 255");
}

} // namespace

void
validateRecordingConfigs(const MachineConfig &machine,
                         const ModeConfig &mode)
{
    validateConfigs(machine, mode);
}

void
validateRecording(const Recording &rec)
{
    validateConfigs(rec.machine, rec.mode);
    const unsigned n = rec.machine.numProcs;

    bool known_app = true;
    try {
        AppTable::byName(rec.appName);
    } catch (const std::out_of_range &) {
        known_app = false;
    }
    require(known_app, "unknown application '" + rec.appName + "'");
    require(rec.iterationsPercent >= 1,
            "iterationsPercent must be at least 1");

    for (std::size_t i = 0; i < rec.pi.entryCount(); ++i) {
        const ProcId p = rec.pi.entryAt(i);
        require(p < n || p == kDmaProcId,
                "PI entry " + std::to_string(i) + " names proc "
                    + std::to_string(p));
    }
    if (rec.pi.hasMasks()) {
        const unsigned shards = rec.machine.bulk.numArbiters;
        require(shards >= 2,
                "PI log carries shard masks but the machine has a "
                "single arbiter");
        for (std::size_t i = 0; i < rec.pi.entryCount(); ++i) {
            const std::uint64_t mask = rec.pi.maskAt(i);
            require(mask != 0,
                    "PI entry " + std::to_string(i)
                        + " has an empty shard mask");
            require(shards == 64 || mask < (1ull << shards),
                    "PI entry " + std::to_string(i)
                        + " names a shard outside the "
                        + std::to_string(shards) + "-arbiter hierarchy");
        }
    }

    for (std::size_t i = 0; i < rec.strata.size(); ++i) {
        const Stratum &s = rec.strata[i];
        if (s.isDma)
            continue;
        require(s.counts.size() == n,
                "stratum " + std::to_string(i) + " has "
                    + std::to_string(s.counts.size())
                    + " counters for " + std::to_string(n)
                    + " processors");
        if (rec.stratified()) {
            for (const auto c : s.counts)
                require(c <= rec.mode.stratifyChunksPerProc,
                        "stratum " + std::to_string(i)
                            + " counter exceeds the per-processor "
                              "maximum");
        }
    }

    require(rec.cs.size() == n, "CS log count does not match numProcs");
    for (ProcId p = 0; p < n; ++p) {
        for (const CsEntry &e : rec.cs[p].entries())
            require(e.size <= rec.mode.chunkSize,
                    "CS entry for proc " + std::to_string(p)
                        + " chunk " + std::to_string(e.seq)
                        + " exceeds chunkSize");
    }

    require(rec.interrupts.numProcs() == n,
            "interrupt log count does not match numProcs");
    require(rec.io.numProcs() == n,
            "I/O log count does not match numProcs");

    for (std::size_t i = 0; i < rec.dma.count(); ++i) {
        const DmaTransfer &t = rec.dma.transferAt(i);
        require(t.wordAddrs.size() == t.values.size(),
                "DMA transfer " + std::to_string(i)
                    + " addr/value lists differ in length");
    }

    for (std::size_t i = 0; i < rec.fingerprint.commits.size(); ++i)
        require(rec.fingerprint.commits[i].proc < n,
                "fingerprint commit " + std::to_string(i)
                    + " names an out-of-range proc");
    require(rec.fingerprint.perProcAcc.size() == n
                && rec.fingerprint.perProcRetired.size() == n,
            "fingerprint per-proc vectors do not match numProcs");

    for (std::size_t i = 0; i < rec.checkpoints.size(); ++i) {
        const SystemCheckpoint &c = rec.checkpoints[i];
        require(c.contexts.size() == n
                    && c.committedChunks.size() == n,
                "checkpoint " + std::to_string(i)
                    + " context count does not match numProcs");
        require(c.rrNext < n,
                "checkpoint " + std::to_string(i)
                    + " rrNext out of range");
        require(c.dmaConsumed <= rec.dma.count(),
                "checkpoint " + std::to_string(i)
                    + " dmaConsumed exceeds the DMA log");
    }
}

void
saveRecording(const Recording &rec, std::ostream &out)
{
    putU64(out, kMagic);
    putU64(out, kVersion);
    putMachine(out, rec.machine);
    putMode(out, rec.mode);
    putString(out, rec.appName);
    putU64(out, rec.workloadSeed);
    putU64(out, rec.iterationsPercent);

    // PI log: entries, then the v2 partial-order mask section.
    putU64(out, rec.pi.entryCount());
    for (std::size_t i = 0; i < rec.pi.entryCount(); ++i)
        putU64(out, rec.pi.entryAt(i));
    putU64(out, rec.pi.hasMasks() ? 1 : 0);
    if (rec.pi.hasMasks())
        for (std::size_t i = 0; i < rec.pi.entryCount(); ++i)
            putU64(out, rec.pi.maskAt(i));

    // Strata.
    putU64(out, rec.strata.size());
    for (const Stratum &s : rec.strata) {
        putU64(out, s.isDma ? 1 : 0);
        putU64(out, s.counts.size());
        for (const auto c : s.counts)
            putU64(out, c);
    }

    // CS logs.
    putU64(out, rec.cs.size());
    for (const CsLog &log : rec.cs) {
        putU64(out, log.entryCount());
        for (const CsEntry &e : log.entries()) {
            putU64(out, e.seq);
            putU64(out, e.size);
            putU64(out, e.maxSize ? 1 : 0);
        }
    }

    // Interrupt log.
    putU64(out, rec.machine.numProcs);
    for (ProcId p = 0; p < rec.machine.numProcs; ++p) {
        const auto &entries = rec.interrupts.entries(p);
        putU64(out, entries.size());
        for (const InterruptRecord &e : entries) {
            putU64(out, e.chunkSeq);
            putU64(out, e.type);
            putU64(out, e.data);
        }
    }

    // I/O log (dense per processor, indexed from 0).
    for (ProcId p = 0; p < rec.machine.numProcs; ++p) {
        const std::uint64_t count = rec.io.countFor(p);
        putU64(out, count);
        for (std::uint64_t i = 0; i < count; ++i)
            putU64(out, rec.io.valueAt(p, i));
    }

    // DMA log.
    putU64(out, rec.dma.count());
    for (std::size_t i = 0; i < rec.dma.count(); ++i) {
        const DmaTransfer &t = rec.dma.transferAt(i);
        putU64(out, rec.dma.slotAt(i));
        putU64(out, t.wordAddrs.size());
        for (std::size_t k = 0; k < t.wordAddrs.size(); ++k) {
            putU64(out, t.wordAddrs[k]);
            putU64(out, t.values[k]);
        }
    }

    // Fingerprint.
    putU64(out, rec.fingerprint.commits.size());
    for (const CommitRecord &c : rec.fingerprint.commits) {
        putU64(out, c.proc);
        putU64(out, c.seq);
        putU64(out, c.size);
        putU64(out, c.accAfter);
    }
    putU64(out, rec.fingerprint.perProcAcc.size());
    for (std::size_t p = 0; p < rec.fingerprint.perProcAcc.size();
         ++p) {
        putU64(out, rec.fingerprint.perProcAcc[p]);
        putU64(out, rec.fingerprint.perProcRetired[p]);
    }
    putU64(out, rec.fingerprint.finalMemHash);

    // Headline statistics.
    putU64(out, rec.stats.totalCycles);
    putU64(out, rec.stats.retiredInstrs);
    putU64(out, rec.stats.executedInstrs);
    putU64(out, rec.stats.committedChunks);
    putU64(out, rec.stats.squashes);
    putU64(out, rec.stats.overflowTruncations);
    putU64(out, rec.stats.collisionTruncations);
    putU64(out, rec.stats.hardTruncations);

    // Checkpoints.
    putU64(out, rec.checkpoints.size());
    for (const SystemCheckpoint &ckpt : rec.checkpoints)
        putCheckpoint(out, ckpt);

    if (!out)
        throw std::runtime_error("failed to write recording");
}

Recording
loadRecording(std::istream &in)
{
    if (getU64(in) != kMagic)
        throw RecordingFormatError("not a DeLorean recording");
    const std::uint64_t version = getU64(in);
    if (version != 1 && version != kVersion)
        throw RecordingFormatError("unsupported recording version");
    const bool legacy_v1 = version == 1;

    Recording rec;
    rec.machine = getMachine(in, legacy_v1);
    rec.mode = getMode(in);
    // Everything below is sized or indexed by the header fields, so
    // they must be in range before any section is materialized.
    validateConfigs(rec.machine, rec.mode);
    rec.appName = getString(in);
    rec.workloadSeed = getU64(in);
    rec.iterationsPercent = static_cast<unsigned>(getU64(in));

    rec.pi = PiLog(rec.machine.numProcs);
    const std::uint64_t pi_count = getU64(in);
    std::vector<ProcId> pi_entries;
    // Clamped reserve: pi_count is unvalidated stream data, so a
    // corrupt count must hit the truncation check in the read loop,
    // not a bad_alloc here.
    pi_entries.reserve(
        std::min<std::uint64_t>(pi_count, 1u << 20));
    for (std::uint64_t i = 0; i < pi_count; ++i) {
        const ProcId p = static_cast<ProcId>(getU64(in));
        require(p < rec.machine.numProcs || p == kDmaProcId,
                "PI entry " + std::to_string(i) + " names proc "
                    + std::to_string(p));
        pi_entries.push_back(p);
    }
    std::uint64_t has_masks = 0;
    if (!legacy_v1) {
        has_masks = getU64(in);
        require(has_masks <= 1, "PI mask flag is not 0 or 1");
    }
    if (has_masks != 0) {
        const unsigned shards = rec.machine.bulk.numArbiters;
        require(shards >= 2,
                "PI log carries shard masks but the machine has a "
                "single arbiter");
        rec.pi.enableMasks(shards);
        for (std::uint64_t i = 0; i < pi_count; ++i) {
            const std::uint64_t mask = getU64(in);
            require(mask != 0,
                    "PI entry " + std::to_string(i)
                        + " has an empty shard mask");
            require(shards == 64 || mask < (1ull << shards),
                    "PI entry " + std::to_string(i)
                        + " names a shard outside the "
                        + std::to_string(shards)
                        + "-arbiter hierarchy");
            rec.pi.appendWithMask(pi_entries[i], mask);
        }
    } else {
        for (const ProcId p : pi_entries)
            rec.pi.append(p);
    }

    const std::uint64_t strata_count = getU64(in);
    for (std::uint64_t i = 0; i < strata_count; ++i) {
        Stratum s;
        s.isDma = getU64(in) != 0;
        const std::uint64_t n = getU64(in);
        for (std::uint64_t k = 0; k < n; ++k)
            s.counts.push_back(static_cast<std::uint8_t>(getU64(in)));
        rec.strata.push_back(std::move(s));
    }

    const std::uint64_t cs_count = getU64(in);
    require(cs_count == rec.machine.numProcs,
            "CS log count does not match numProcs");
    rec.cs.assign(cs_count, CsLog(rec.mode));
    for (std::uint64_t p = 0; p < cs_count; ++p) {
        const std::uint64_t n = getU64(in);
        for (std::uint64_t k = 0; k < n; ++k) {
            const ChunkSeq seq = getU64(in);
            const InstrCount size = getU64(in);
            const bool max = getU64(in) != 0;
            if (rec.mode.mode == ExecMode::kOrderAndSize)
                rec.cs[p].appendCommittedSize(seq, size, max);
            else
                rec.cs[p].appendTruncation(seq, size);
        }
    }

    const std::uint64_t irq_procs = getU64(in);
    require(irq_procs == rec.machine.numProcs,
            "interrupt log count does not match numProcs");
    rec.interrupts = InterruptLog(static_cast<unsigned>(irq_procs));
    for (ProcId p = 0; p < irq_procs; ++p) {
        const std::uint64_t n = getU64(in);
        for (std::uint64_t k = 0; k < n; ++k) {
            InterruptRecord e;
            e.chunkSeq = getU64(in);
            e.type = static_cast<std::uint8_t>(getU64(in));
            e.data = getU64(in);
            rec.interrupts.append(p, e);
        }
    }

    rec.io = IoLog(rec.machine.numProcs);
    for (ProcId p = 0; p < rec.machine.numProcs; ++p) {
        const std::uint64_t n = getU64(in);
        for (std::uint64_t i = 0; i < n; ++i)
            rec.io.append(p, i, getU64(in));
    }

    const std::uint64_t dma_count = getU64(in);
    for (std::uint64_t i = 0; i < dma_count; ++i) {
        const std::uint64_t slot = getU64(in);
        const std::uint64_t words = getU64(in);
        DmaTransfer t;
        for (std::uint64_t k = 0; k < words; ++k) {
            t.wordAddrs.push_back(getU64(in));
            t.values.push_back(getU64(in));
        }
        rec.dma.append(t, slot);
    }

    const std::uint64_t commits = getU64(in);
    for (std::uint64_t i = 0; i < commits; ++i) {
        CommitRecord c;
        c.proc = static_cast<ProcId>(getU64(in));
        c.seq = getU64(in);
        c.size = getU64(in);
        c.accAfter = getU64(in);
        rec.fingerprint.commits.push_back(c);
    }
    const std::uint64_t procs = getU64(in);
    for (std::uint64_t p = 0; p < procs; ++p) {
        rec.fingerprint.perProcAcc.push_back(getU64(in));
        rec.fingerprint.perProcRetired.push_back(getU64(in));
    }
    rec.fingerprint.finalMemHash = getU64(in);

    rec.stats.totalCycles = getU64(in);
    rec.stats.retiredInstrs = getU64(in);
    rec.stats.executedInstrs = getU64(in);
    rec.stats.committedChunks = getU64(in);
    rec.stats.squashes = getU64(in);
    rec.stats.overflowTruncations = getU64(in);
    rec.stats.collisionTruncations = getU64(in);
    rec.stats.hardTruncations = getU64(in);

    const std::uint64_t ckpts = getU64(in);
    for (std::uint64_t i = 0; i < ckpts; ++i)
        rec.checkpoints.push_back(getCheckpoint(in));
    validateRecording(rec);
    return rec;
}

void
saveRecordingFile(const Recording &rec, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("cannot open " + path + " for write");
    saveRecording(rec, out);
}

Recording
loadRecordingFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open " + path);
    return loadRecording(in);
}

} // namespace delorean
