/**
 * @file
 * Replay-observer plugin API (DESIGN.md Section 15).
 *
 * Deterministic replay is the substrate for heavyweight dynamic
 * analysis (race detection, lock-order checking, taint tracking) that
 * is too expensive to run at record time. An analysis implements
 * ReplayObserver and attaches it to a replay via
 * EngineOptions::observer (serial DES replay) or
 * ParallelReplayOptions::observer (chunk-parallel replay).
 *
 * The contract both replayers honor:
 *
 *  - Every committed chunk produces exactly one onChunkRetire() with
 *    the chunk's ordered program-order memory-access trace (split
 *    replay chunks are merged back into their logical chunk first);
 *    every DMA transfer produces exactly one onDmaRetire().
 *  - Callbacks arrive in ascending *canonical commit position* — a
 *    dense 0-based global sequence over chunk and DMA commits that is
 *    a pure function of the recording (PI/strata log linearization),
 *    never of replay timing. Out-of-order retirement (the parallel
 *    replayer's OCC pipeline, partial-order shard relaxation, strata
 *    reordering) is buffered and re-sequenced by ObserverHub, so an
 *    observer sees a byte-identical event stream at any DELOREAN_JOBS,
 *    commit-window size and shard count.
 *  - Callbacks run on the replay coordinator thread; observers need no
 *    locking of their own.
 *  - The observer is borrowed, never owned: it must outlive the
 *    replay, and one observer instance must not be attached to two
 *    concurrent replays.
 *  - Observers require a full-run replay: combining an observer with
 *    interval replay (checkpoint start/stop) is rejected with a
 *    ConfigError, since analyses like happens-before need the complete
 *    commit history.
 */

#ifndef DELOREAN_CORE_REPLAY_OBSERVER_HPP_
#define DELOREAN_CORE_REPLAY_OBSERVER_HPP_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "core/stratifier.hpp"

namespace delorean
{

struct Recording;
struct DmaTransfer;

/** Kind of one traced memory access (cached ops only). */
enum class AccessKind : std::uint8_t
{
    kLoad,
    kStore,
    kAmoSwap,     ///< test-and-set; value is the *observed* (pre-swap) word
    kAmoFetchAdd, ///< value is the *observed* (pre-add) word
};

/**
 * One traced access, in program order within its chunk. @p value is
 * the stored value for plain stores and the observed (loaded) value
 * for loads and atomics — the datum a happens-before analysis needs to
 * recognize lock acquires (AmoSwap observing 0) and barrier phases.
 */
struct MemAccess
{
    Addr addr = 0;
    std::uint64_t value = 0;
    AccessKind kind = AccessKind::kLoad;
};

/** One committed chunk, delivered in canonical commit order. */
struct ChunkObservation
{
    ProcId proc = 0;
    ChunkSeq seq = 0;            ///< processor-local logical chunk number
    std::uint64_t commitPos = 0; ///< canonical global commit position
    InstrCount size = 0;         ///< retired instructions (all pieces)
    /// Ordered program-order trace of the chunk's cached accesses.
    /// Borrowed: valid only for the duration of the callback.
    const std::vector<MemAccess> *accesses = nullptr;
};

/** One committed DMA transfer, delivered in canonical commit order. */
struct DmaObservation
{
    std::uint64_t commitPos = 0; ///< canonical global commit position
    /// Borrowed from the recording's DMA log; valid for the callback.
    const DmaTransfer *transfer = nullptr;
};

/** Base class for replay-time analyses. */
class ReplayObserver
{
  public:
    virtual ~ReplayObserver() = default;

    /** Called once before the first retirement. */
    virtual void onReplayBegin(const Recording &rec) { (void)rec; }

    /** Called once per committed logical chunk, in canonical order. */
    virtual void onChunkRetire(const ChunkObservation &obs) = 0;

    /** Called once per DMA transfer, in canonical order. */
    virtual void onDmaRetire(const DmaObservation &obs) { (void)obs; }

    /** Called once after the last retirement of a completed replay. */
    virtual void onReplayEnd() {}
};

/**
 * Re-sequencing buffer between a replayer and its observer. Retires
 * may arrive in any order tagged with their canonical commit position;
 * the hub holds them until every predecessor has been delivered, then
 * dispatches in strictly ascending position. Single-threaded: both
 * replayers retire on their coordinator thread.
 */
class ObserverHub
{
  public:
    explicit ObserverHub(ReplayObserver *observer) : observer_(observer) {}

    bool enabled() const { return observer_ != nullptr; }

    void
    begin(const Recording &rec)
    {
        if (observer_)
            observer_->onReplayBegin(rec);
    }

    /** Buffer a chunk retirement at canonical position @p pos. */
    void
    chunkRetired(std::uint64_t pos, ProcId proc, ChunkSeq seq,
                 InstrCount size, std::vector<MemAccess> trace)
    {
        if (!observer_)
            return;
        Event e;
        e.proc = proc;
        e.seq = seq;
        e.size = size;
        e.trace = std::move(trace);
        pending_.emplace(pos, std::move(e));
        drain();
    }

    /** Buffer a DMA retirement at canonical position @p pos. */
    void
    dmaRetired(std::uint64_t pos, const DmaTransfer &xfer)
    {
        if (!observer_)
            return;
        Event e;
        e.isDma = true;
        e.transfer = &xfer;
        pending_.emplace(pos, std::move(e));
        drain();
    }

    /**
     * Finish a completed replay: a full run's positions are dense, so
     * everything buffered has been delivered; dispatch onReplayEnd.
     */
    void
    end()
    {
        if (!observer_)
            return;
        // Belt and braces: a gap here would mean a replayer bug, but
        // never silently drop events — deliver the remainder in order.
        for (auto &[pos, e] : pending_)
            dispatch(pos, e);
        pending_.clear();
        observer_->onReplayEnd();
    }

  private:
    struct Event
    {
        bool isDma = false;
        ProcId proc = 0;
        ChunkSeq seq = 0;
        InstrCount size = 0;
        std::vector<MemAccess> trace;
        const DmaTransfer *transfer = nullptr;
    };

    void
    dispatch(std::uint64_t pos, const Event &e)
    {
        if (e.isDma) {
            DmaObservation obs;
            obs.commitPos = pos;
            obs.transfer = e.transfer;
            observer_->onDmaRetire(obs);
        } else {
            ChunkObservation obs;
            obs.proc = e.proc;
            obs.seq = e.seq;
            obs.commitPos = pos;
            obs.size = e.size;
            obs.accesses = &e.trace;
            observer_->onChunkRetire(obs);
        }
    }

    void
    drain()
    {
        for (auto it = pending_.begin();
             it != pending_.end() && it->first == next_;
             it = pending_.erase(it), ++next_)
            dispatch(it->first, it->second);
    }

    ReplayObserver *observer_;
    std::map<std::uint64_t, Event> pending_;
    std::uint64_t next_ = 0;
};

/**
 * Canonical commit positions of a stratified recording. A stratified
 * replay's retirement order is timing-dependent *within* a stratum
 * (any processor with remaining budget may go), so the canonical
 * linearization is fixed by the log alone: strata in order, and within
 * a non-DMA stratum processors in ascending ID, each contributing its
 * full chunk budget; a DMA stratum is one DMA commit slot. This is
 * exactly the order a replay that always picks the lowest-ID budgeted
 * processor retires in.
 */
struct StrataCanonicalOrder
{
    /// chunkPos[p][k]: canonical position of processor p's k-th chunk.
    std::vector<std::vector<std::uint64_t>> chunkPos;
    /// dmaPos[d]: canonical position of the d-th DMA transfer.
    std::vector<std::uint64_t> dmaPos;
};

inline StrataCanonicalOrder
computeStrataCanonicalOrder(const std::vector<Stratum> &strata,
                            unsigned num_procs)
{
    StrataCanonicalOrder order;
    order.chunkPos.resize(num_procs);
    std::uint64_t pos = 0;
    for (const Stratum &s : strata) {
        if (s.isDma) {
            order.dmaPos.push_back(pos++);
            continue;
        }
        for (unsigned p = 0; p < num_procs && p < s.counts.size(); ++p)
            for (std::uint8_t k = 0; k < s.counts[p]; ++k)
                order.chunkPos[p].push_back(pos++);
    }
    return order;
}

} // namespace delorean

#endif // DELOREAN_CORE_REPLAY_OBSERVER_HPP_
