#include "core/engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <type_traits>

#include "common/errors.hpp"
#include "trace/layout.hpp"

namespace delorean
{

namespace
{

/// Safety valve against structural deadlock / runaway simulations.
constexpr std::uint64_t kMaxEvents = 2'000'000'000ull;

/// Per-instruction rollback snapshots copy every ThreadContext field
/// before mappedSegs (which generate() can only set one bit of, undone
/// separately). mappedSegs must therefore stay the last member.
static_assert(std::is_trivially_copyable_v<ThreadContext>);
constexpr std::size_t kCtxRollbackBytes =
    offsetof(ThreadContext, mappedSegs);
static_assert(kCtxRollbackBytes + sizeof(std::bitset<2048>)
              == sizeof(ThreadContext));

} // namespace

ChunkEngine::ChunkEngine(const Workload &workload,
                         const MachineConfig &machine,
                         const ModeConfig &mode,
                         const EngineOptions &options)
    : workload_(workload),
      machine_(machine),
      mode_(mode),
      opts_(options),
      n_(machine.numProcs),
      caches_(machine),
      timing_(machine, ConsistencyModel::kChunked),
      env_rng_(options.envSeed),
      perturb_rng_(options.perturb.seed),
      irq_(workload.profile(), n_, options.envSeed),
      dma_dev_(workload.profile(), options.envSeed),
      io_dev_(options.envSeed),
      procs_(n_)
{
    assert(workload.numProcs() == n_);
    shards_ = machine_.bulk.numArbiters;
    if (shards_ < 1 || shards_ > 64 || (shards_ & (shards_ - 1)) != 0)
        throw ConfigError("numArbiters must be a power of two in "
                          "[1, 64], got "
                          + std::to_string(shards_));
    if (n_ < 1 || n_ > 64)
        throw ConfigError("numProcs must be in [1, 64], got "
                          + std::to_string(n_));
    if (const char *env = std::getenv("DELOREAN_NO_SUMMARY_FILTER"))
        if (*env && *env != '0')
            filter_mode_ = FilterMode::kForceOff;
    if (filter_mode_ == FilterMode::kAdaptive) {
        if (const char *env = std::getenv("DELOREAN_SUMMARY_FILTER")) {
            const std::string v(env);
            if (v == "0" || v == "off")
                filter_mode_ = FilterMode::kForceOff;
            else if (!v.empty())
                filter_mode_ = FilterMode::kForceOn;
        }
    }
    summary_filter_ = filter_mode_ != FilterMode::kForceOff;
    proc_unions_.resize(n_);
    workload_.initializeMemory(mem_);
    const unsigned l1_sets =
        machine_.mem.l1SizeBytes / kLineBytes / machine_.mem.l1Ways;
    for (ProcId p = 0; p < n_; ++p) {
        workload_.program().initContext(procs_[p].ctx, p);
        procs_[p].lastCommittedCtx = procs_[p].ctx;
        procs_[p].finished = workload_.program().done(procs_[p].ctx);
        spec_.emplace_back(l1_sets, machine_.mem.l1Ways);
    }
    stats_.perProcStallCycles.assign(n_, 0);
}

ChunkEngine::~ChunkEngine() = default;

Cycle
ChunkEngine::arbLatency() const
{
    return opts_.replay ? opts_.replayArbitrationLatency
                        : machine_.bulk.commitArbitration;
}

// ---------------------------------------------------------------------------
// Run entry points
// ---------------------------------------------------------------------------

Recording
ChunkEngine::record()
{
    assert(!ran_ && !opts_.replay);
    ran_ = true;
    const auto wall_start = std::chrono::steady_clock::now();

    Recording rec;
    rec.machine = machine_;
    rec.mode = mode_;
    rec.appName = workload_.name();
    rec.workloadSeed = workload_.seed();
    // Stamped up front, not post-hoc: streaming consumers (the ring
    // writer's one-time meta) see the in-flight recording mid-run.
    rec.iterationsPercent = workload_.iterationsPercent();
    rec.pi = PiLog(n_);
    rec.cs.assign(n_, CsLog(mode_));
    rec.interrupts = InterruptLog(n_);
    rec.io = IoLog(n_);
    rec_ = &rec;

    if (mode_.stratifyChunksPerProc != 0
        && mode_.mode != ExecMode::kPicoLog) {
        stratifier_ = std::make_unique<Stratifier>(
            n_, mode_.stratifyChunksPerProc);
    }

    const unsigned slots = machine_.bulk.maxConcurrentCommits;
    slot_busy_until_.assign(slots, 0);
    if (shards_ > 1 && mode_.mode != ExecMode::kPicoLog) {
        // Sharded arbiter hierarchy: one slot pool per address shard
        // plus the root arbiter's single cross-shard slot. The flat PI
        // log then records each commit's shard mask, turning the log
        // into a partial order (PicoLog keeps the token-serialized
        // global pool — its commit order is predefined, not logged).
        shard_slot_busy_.assign(shards_, std::vector<Cycle>(slots, 0));
        root_slot_busy_ = 0;
        if (opts_.logging && !stratifier_)
            rec.pi.enableMasks(shards_);
    }

    for (ProcId p = 0; p < n_; ++p)
        tryStartChunk(p, 0);
    if (mode_.mode == ExecMode::kPicoLog)
        schedule(kTokenHop, EvKind::kTokenArrive, 0, 0);

    runLoop();

    if (stratifier_) {
        stratifier_->finish();
        rec.strata = stratifier_->strata();
    }

    for (ProcId p = 0; p < n_; ++p) {
        fp_.perProcAcc.push_back(procs_[p].ctx.acc);
        fp_.perProcRetired.push_back(procs_[p].ctx.retired);
    }
    fp_.finalMemHash = mem_.hash();
    rec.fingerprint = fp_;

    stats_.totalCycles = last_time_;
    stats_.generatedInstrs = generated_instrs_;
    for (ProcId p = 0; p < n_; ++p)
        stats_.perProcStallCycles[p] = procs_[p].stallCycles;
    stats_.traffic = dir_.traffic();
    stats_.logWordFlushes = rec.pi.wordFlushes();
    for (const CsLog &log : rec.cs)
        stats_.logWordFlushes += log.wordFlushes();
    stats_.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - wall_start)
            .count();
    rec.stats = stats_;
    return rec;
}

ReplayOutcome
ChunkEngine::replay(const Recording &prior)
{
    assert(!ran_ && opts_.replay);
    assert(prior.machine.numProcs == n_);
    ran_ = true;
    const auto wall_start = std::chrono::steady_clock::now();
    prior_ = &prior;

    if (opts_.observer
        && (opts_.startCheckpoint || opts_.stopCheckpoint))
        throw ConfigError("replay observers require a full-run replay; "
                          "combine with interval replay is not supported");
    obs_hub_ = std::make_unique<ObserverHub>(opts_.observer);
    if (obs_hub_->enabled() && prior.stratified())
        strata_order_ = std::make_unique<StrataCanonicalOrder>(
            computeStrataCanonicalOrder(prior.strata, n_));

    if (mode_.mode != ExecMode::kPicoLog) {
        if (prior.stratified()) {
            strata_cursor_ = std::make_unique<StrataCursor>(prior.strata, n_);
        } else if (prior.pi.hasMasks() && opts_.honorPartialOrder
                   && !opts_.startCheckpoint && !opts_.stopCheckpoint) {
            // Partial-order replay: honor exactly the recorded
            // per-shard orders plus per-processor program order.
            // Interval replay stays on the total-order cursor — its
            // checkpoint-aligned GCC arithmetic needs the log's own
            // linearization, which is always a valid schedule.
            po_cursor_ = std::make_unique<PartialOrderCursor>(
                prior.pi, n_, prior.machine.bulk.numArbiters);
            // Out-of-order retires fill the fingerprint positionally
            // so it stays byte-identical to an in-order replay's.
            fp_.commits.resize(po_cursor_->chunkEntryCount());
            po_fp_pos_.assign(n_, 0);
        } else {
            pi_cursor_ = std::make_unique<PiLogCursor>(prior.pi);
        }
    }

    cs_lookup_.resize(n_);
    for (ProcId p = 0; p < n_; ++p) {
        for (const CsEntry &e : prior.cs[p].entries())
            cs_lookup_[p].emplace(e.seq, e);
        for (const InterruptRecord &e : prior.interrupts.entries(p))
            procs_[p].irqBySeq.emplace(e.chunkSeq, e);
    }

    slot_busy_until_.assign(std::max(1u, opts_.replayWindow), 0);

    if (const SystemCheckpoint *ckpt = opts_.startCheckpoint) {
        // Interval replay (Appendix B): restore the architectural
        // state at GCC = n and resume consuming the logs there.
        assert(ckpt->valid() && ckpt->contexts.size() == n_);
        mem_ = ckpt->memory;
        gcc_ = ckpt->gcc;
        dma_replay_idx_ = ckpt->dmaConsumed;
        rr_next_ = ckpt->rrNext;
        if (pi_cursor_)
            for (std::uint64_t i = 0; i < ckpt->gcc; ++i) {
                if (pi_cursor_->atEnd())
                    throw ReplayLogExhausted(
                        "checkpoint GCC "
                        + std::to_string(ckpt->gcc)
                        + " lies beyond the PI log ("
                        + std::to_string(prior.pi.entryCount())
                        + " entries)");
                pi_cursor_->next();
            }
        if (strata_cursor_)
            strata_cursor_->advanceTo(ckpt->committedChunks,
                                      ckpt->dmaConsumed);
        for (ProcId p = 0; p < n_; ++p) {
            procs_[p].ctx = ckpt->contexts[p];
            procs_[p].lastCommittedCtx = ckpt->contexts[p];
            procs_[p].nextSeq = ckpt->committedChunks[p];
            procs_[p].committedCount = ckpt->committedChunks[p];
            procs_[p].finished =
                workload_.program().done(procs_[p].ctx);
        }
    }

    obs_hub_->begin(prior);

    for (ProcId p = 0; p < n_; ++p)
        tryStartChunk(p, 0);

    runLoop();

    obs_hub_->end();

    for (ProcId p = 0; p < n_; ++p) {
        // A bounded replay stops at a commit boundary with chunks
        // still speculatively in flight, so the architectural thread
        // state is the last *committed* context, not the frontier.
        const ThreadContext &ctx = opts_.stopCheckpoint
                                       ? procs_[p].lastCommittedCtx
                                       : procs_[p].ctx;
        fp_.perProcAcc.push_back(ctx.acc);
        fp_.perProcRetired.push_back(ctx.retired);
    }
    fp_.finalMemHash = mem_.hash();

    stats_.totalCycles = last_time_;
    stats_.generatedInstrs = generated_instrs_;
    for (ProcId p = 0; p < n_; ++p)
        stats_.perProcStallCycles[p] = procs_[p].stallCycles;
    stats_.traffic = dir_.traffic();
    stats_.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - wall_start)
            .count();

    ReplayOutcome outcome;
    outcome.fingerprint = fp_;
    outcome.stats = stats_;
    ExecutionFingerprint expected;
    if (opts_.stopCheckpoint)
        expected = prior.fingerprintBetween(opts_.startCheckpoint,
                                            *opts_.stopCheckpoint);
    else if (opts_.startCheckpoint)
        expected =
            prior.fingerprintFromCheckpoint(*opts_.startCheckpoint);
    else
        expected = prior.fingerprint;
    outcome.deterministicExact = fp_.matchesExact(expected);
    outcome.deterministicPerProc = fp_.matchesPerProc(expected);
    return outcome;
}

void
ChunkEngine::maybeCheckpoint()
{
    if (opts_.replay || !rec_)
        return;
    bool due = false;
    if (next_checkpoint_ < opts_.checkpointGccs.size()
        && gcc_ == opts_.checkpointGccs[next_checkpoint_]) {
        ++next_checkpoint_;
        due = true;
    }
    if (opts_.checkpointPeriod != 0
        && gcc_ % opts_.checkpointPeriod == 0)
        due = true;
    if (!due)
        return;

    // Align the strata log with the checkpoint: cutting the pending
    // partial stratum here means no stratum ever straddles a
    // checkpoint GCC, which is what lets the archive (src/store)
    // slice the strata log at segment boundaries and StrataCursor
    // seek to one with whole-stratum consumption.
    if (stratifier_)
        stratifier_->cutAtCheckpoint();

    SystemCheckpoint ckpt;
    ckpt.gcc = gcc_;
    ckpt.memory = mem_.snapshot();
    ckpt.dmaConsumed = dma_granted_;
    for (const ProcState &ps : procs_) {
        ckpt.contexts.push_back(ps.lastCommittedCtx);
        ckpt.committedChunks.push_back(ps.committedCount);
    }
    // PicoLog: the turn after the last committing processor.
    if (!fp_.commits.empty())
        ckpt.rrNext = (fp_.commits.back().proc + 1)
                      % static_cast<ProcId>(n_);
    rec_->checkpoints.push_back(std::move(ckpt));

    if (opts_.onCheckpoint) {
        // Streaming consumers slice the strata and fingerprint logs
        // at checkpoint boundaries, but both live in the engine until
        // the run ends: sync the strata cut above and the append-only
        // commit-record tail. The final assignments at the end of
        // record() overwrite these with the finished logs.
        if (stratifier_)
            rec_->strata = stratifier_->strata();
        std::vector<CommitRecord> &commits =
            rec_->fingerprint.commits;
        commits.insert(commits.end(),
                       fp_.commits.begin()
                           + static_cast<std::ptrdiff_t>(
                               commits.size()),
                       fp_.commits.end());
        opts_.onCheckpoint(*rec_);
    }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void
ChunkEngine::schedule(Cycle time, EvKind kind, ProcId proc,
                      std::uint64_t uid)
{
    events_.push(Event{time, event_order_++, kind, proc, uid});
}

void
ChunkEngine::runLoop()
{
    const std::uint64_t budget =
        opts_.maxEvents ? opts_.maxEvents : kMaxEvents;
    std::uint64_t handled = 0;
    while (!events_.empty() && !stopped_) {
        const Event ev = events_.top();
        events_.pop();
        // Commit-finish events only wake the arbiter, and the arbiter
        // drains every grantable request per wakeup — so adjacent
        // wakeups at the same cycle are one drain pass. (Request
        // arrivals are NOT coalescible: their order is the FCFS queue
        // order and thus architectural.)
        if (ev.kind == EvKind::kCommitFinish) {
            while (!events_.empty()
                   && events_.top().kind == EvKind::kCommitFinish
                   && events_.top().time == ev.time) {
                events_.pop();
                ++stats_.arbiterWakeupsCoalesced;
            }
        }
        last_time_ = std::max(last_time_, ev.time);
        handleEvent(ev);
        if (++handled > budget) {
            if (opts_.replay)
                throw ReplayBudgetExceeded(
                    "no forward progress after "
                    + std::to_string(budget) + " events");
            throw std::runtime_error("ChunkEngine: event budget exceeded "
                                     "(possible deadlock/divergence)");
        }
    }
    if (stopped_)
        return; // bounded replay: the interval ends mid-program
    if (!allFinished()) {
        if (opts_.replay)
            throw ReplayStalled("event queue drained with threads "
                                "still unfinished");
        throw std::runtime_error("ChunkEngine: simulation stalled before "
                                 "all threads finished (replay divergence?)");
    }
}

void
ChunkEngine::handleEvent(const Event &ev)
{
    switch (ev.kind) {
      case EvKind::kChunkDone:
        onChunkDone(ev.proc, ev.uid, ev.time);
        break;
      case EvKind::kRequestArrive: {
        EngineChunk *c = findChunk(ev.proc, ev.uid);
        if (c) {
            c->extra.requestArrived = true;
            arbiterProcess(ev.time);
        }
        break;
      }
      case EvKind::kCommitFinish:
        arbiterProcess(ev.time);
        break;
      case EvKind::kTokenArrive:
        onTokenArrive(ev.proc, ev.time);
        break;
      case EvKind::kProcResume: {
        ProcState &ps = procs_[ev.proc];
        if (ps.restart.has_value())
            buildChunk(ev.proc, ev.time);
        else
            tryStartChunk(ev.proc, ev.time);
        break;
      }
    }
}

// ---------------------------------------------------------------------------
// Chunk lifecycle
// ---------------------------------------------------------------------------

ChunkEngine::EngineChunk *
ChunkEngine::findChunk(ProcId p, std::uint64_t uid)
{
    for (auto &c : procs_[p].inflight)
        if (c->extra.uid == uid)
            return c.get();
    return nullptr;
}

std::unique_ptr<ChunkEngine::EngineChunk>
ChunkEngine::acquireChunk()
{
    if (chunk_pool_.empty())
        return std::make_unique<EngineChunk>();
    auto chunk = std::move(chunk_pool_.back());
    chunk_pool_.pop_back();
    chunk->reset();
    return chunk;
}

void
ChunkEngine::recycleChunk(std::unique_ptr<EngineChunk> chunk)
{
    chunk_pool_.push_back(std::move(chunk));
}

void
ChunkEngine::tryStartChunk(ProcId p, Cycle now)
{
    ProcState &ps = procs_[p];
    if (ps.finished || ps.restart.has_value() || ps.blockedOnOverflow)
        return;
    // Bounded replay: never build a chunk that commits at or after
    // the stop checkpoint — its CS/interrupt/IO records may lie in
    // segments the archive reader deliberately did not decode.
    if (opts_.replay && opts_.stopCheckpoint
        && ps.pendingRemainder == 0
        && ps.nextSeq >= opts_.stopCheckpoint->committedChunks[p])
        return;
    if (!ps.inflight.empty()
        && ps.inflight.back()->state == ChunkState::kExecuting)
        return;
    if (workload_.program().done(ps.ctx) && ps.pendingRemainder == 0) {
        if (ps.inflight.empty())
            ps.finished = true;
        return;
    }
    if (ps.inflight.size() >= machine_.bulk.simultaneousChunks) {
        if (!ps.stalled) {
            ps.stalled = true;
            ps.stallStart = now;
        }
        return;
    }
    buildChunk(p, now);
}

std::uint64_t
ChunkEngine::chunkLoad(ProcId p, const EngineChunk &chunk, Addr word) const
{
    std::uint64_t value = 0;
    if (chunk.forward(word, value))
        return value;
    // Older in-flight chunks of the same processor, youngest first.
    const auto &inflight = procs_[p].inflight;
    for (auto it = inflight.rbegin(); it != inflight.rend(); ++it) {
        if ((*it)->forward(word, value))
            return value;
    }
    return mem_.load(word);
}

double
ChunkEngine::accessCost(ProcId p, Op op, Addr line, EngineChunk &chunk)
{
    HitLevel level = caches_.access(p, line);
    if (level != HitLevel::kL1) {
        dir_.countLineTransfer();
        chunk.extra.fills.emplace_back(line, level);
    }
    if (opts_.perturb.enabled
        && perturb_rng_.chancePerMille(opts_.perturb.hitMissSwapPerMille)) {
        level = (level == HitLevel::kL1) ? HitLevel::kL2 : HitLevel::kL1;
    }
    return timing_.memCost(op, level);
}

void
ChunkEngine::buildChunk(ProcId p, Cycle now)
{
    ProcState &ps = procs_[p];
    const ThreadProgram &prog = workload_.program();

    ChunkSeq seq;
    bool continuation;
    InstrCount target;
    unsigned squash_count = 0;
    bool collision_reduced = false;

    if (ps.restart.has_value()) {
        // ps.ctx already holds the restart start context (restored by
        // squashFrom; nothing touches it while a restart is pending).
        const RestartInfo r = *ps.restart;
        ps.restart.reset();
        seq = r.seq;
        continuation = r.continuation;
        target = r.pieceTarget;
        squash_count = r.squashCount;
        collision_reduced = r.collisionReduced;
    } else {
        continuation = ps.pendingRemainder > 0;
        seq = ps.nextSeq;
        if (continuation) {
            target = ps.pendingRemainder;
        } else {
            // Interrupt delivery happens at the logical chunk
            // boundary, before the start-context snapshot is taken.
            // irqBySeq makes delivery a pure function of the chunk
            // seq, so a cascade squash that rolls the context back
            // past an already-delivered boundary re-delivers the same
            // interrupt when the chunk is rebuilt.
            const auto it = ps.irqBySeq.find(seq);
            if (it != ps.irqBySeq.end()) {
                prog.deliverInterrupt(ps.ctx, it->second.type,
                                      it->second.data);
            } else if (!opts_.replay
                       && (ps.irqCheckedSeq
                               == static_cast<ChunkSeq>(-1)
                           || seq > ps.irqCheckedSeq)) {
                ps.irqCheckedSeq = seq;
                InterruptEvent ie;
                if (irq_.poll(p, ps.ctx.retired, ie)) {
                    prog.deliverInterrupt(ps.ctx, ie.type, ie.data);
                    const InterruptRecord record{seq, ie.type, ie.data};
                    ps.irqBySeq.emplace(seq, record);
                    if (opts_.logging)
                        rec_->interrupts.append(p, record);
                }
            }

            // Target size.
            if (opts_.replay) {
                const auto it = cs_lookup_[p].find(seq);
                if (it != cs_lookup_[p].end()) {
                    const CsEntry &e = it->second;
                    target = (mode_.mode == ExecMode::kOrderAndSize
                              && e.maxSize)
                                 ? mode_.chunkSize
                                 : e.size;
                } else {
                    target = mode_.chunkSize;
                }
            } else {
                target = mode_.chunkSize;
                if (mode_.mode == ExecMode::kOrderAndSize
                    && env_rng_.chancePerMille(
                           mode_.varSizeTruncatePercent * 10)) {
                    target = 1 + env_rng_.below(mode_.chunkSize);
                }
            }
        }
    }

    if (prog.done(ps.ctx) && !continuation) {
        if (ps.inflight.empty())
            ps.finished = true;
        return;
    }

    auto chunk = acquireChunk();
    EngineChunk &c = *chunk;
    c.proc = p;
    c.seq = seq;
    c.startCtx = ps.ctx;
    c.targetSize = target;
    c.squashCount = squash_count;
    c.startTime = now;
    c.extra.uid = next_uid_++;
    c.extra.continuation = continuation;
    c.extra.pieceTarget = target;
    c.extra.collisionReduced = collision_reduced;

    double cost = 0.0;
    InstrCount i = 0;
    ChunkEnd reason = ChunkEnd::kSizeLimit;
    bool blocked = false;
    const bool tracing = obs_hub_ && obs_hub_->enabled();

    while (i < target) {
        if (prog.done(ps.ctx)) {
            reason = ChunkEnd::kProgramEnd;
            break;
        }
        // Pre-instruction rollback snapshot. generate() can touch any
        // small field but at most SETS one mappedSegs bit (first-touch
        // trap), so the snapshot covers only the prefix before
        // mappedSegs and the rollback clears that single bit — not a
        // 256-byte bitset copy per instruction.
        std::memcpy(static_cast<void *>(&scratch_pre_ctx_),
                    static_cast<const void *>(&ps.ctx),
                    kCtxRollbackBytes);
        const Instr in = prog.generate(ps.ctx);
        std::uint64_t value = 0;

        switch (in.op) {
          case Op::kLoad:
          case Op::kStore:
          case Op::kAmoSwap:
          case Op::kAmoFetchAdd: {
            const Addr word = wordOf(in.addr);
            const Addr line = lineOf(in.addr);
            if (writesMemory(in.op)
                && !c.extra.linesWritten.contains(line)
                && spec_[p].wouldOverflow(line)) {
                // Undo this generate() call: restore the small fields,
                // and if it fired the first-touch trap (the only path
                // that writes mappedSegs), clear the one bit it set.
                const bool trap_fired = scratch_pre_ctx_.trapRemaining == 0
                                        && ps.ctx.trapRemaining > 0;
                const unsigned trap_seg =
                    trap_fired ? AddressLayout::privateSegment(
                                     ps.ctx.pendingAccess.addr)
                               : 0;
                std::memcpy(static_cast<void *>(&ps.ctx),
                            static_cast<const void *>(&scratch_pre_ctx_),
                            kCtxRollbackBytes);
                if (trap_fired)
                    ps.ctx.mappedSegs.reset(trap_seg);
                if (i == 0)
                    blocked = true;
                else
                    reason = ChunkEnd::kCacheOverflow;
                goto chunk_end;
            }
            cost += accessCost(p, in.op, line, c);
            if (returnsValue(in.op)) {
                value = chunkLoad(p, c, word);
                c.sigs.read.insert(line);
                c.extra.linesRead.insert(line);
                dir_.addSharer(p, line);
            }
            if (writesMemory(in.op)) {
                std::uint64_t stored = in.value;
                if (in.op == Op::kAmoFetchAdd)
                    stored = value + in.value;
                c.writes.emplace_back(word, stored);
                c.writeMap[word] = stored;
                c.sigs.write.insert(line);
                if (c.extra.linesWritten.insert(line)) {
                    spec_[p].insert(line);
                    c.writtenLines.push_back(line);
                }
            }
            if (tracing) {
                MemAccess a;
                a.addr = in.addr;
                a.kind = in.op == Op::kLoad      ? AccessKind::kLoad
                         : in.op == Op::kStore   ? AccessKind::kStore
                         : in.op == Op::kAmoSwap ? AccessKind::kAmoSwap
                                                 : AccessKind::kAmoFetchAdd;
                // Loads and atomics report the observed value (a lock
                // acquire is an AmoSwap observing 0), stores the
                // stored one.
                a.value = returnsValue(in.op) ? value : in.value;
                c.extra.trace.push_back(a);
            }
            break;
          }
          case Op::kIoLoad:
            cost += timing_.memCost(in.op, HitLevel::kMemory);
            if (!opts_.replay) {
                value = io_dev_.read(in.addr);
            } else {
                if (ps.ctx.ioLoadCount >= prior_->io.countFor(p))
                    throw ReplayLogExhausted(
                        "I/O log for proc " + std::to_string(p)
                        + " has only "
                        + std::to_string(prior_->io.countFor(p))
                        + " values");
                value = prior_->io.valueAt(p, ps.ctx.ioLoadCount);
            }
            c.ioValues.push_back(value);
            ++ps.ctx.ioLoadCount;
            break;
          case Op::kIoStore:
            cost += timing_.memCost(in.op, HitLevel::kMemory);
            break;
          case Op::kSpecialSys:
            cost += timing_.computeCost() + kSpecialSysCost;
            break;
          case Op::kCompute:
            cost += timing_.computeCost();
            break;
        }

        prog.observe(ps.ctx, in, value);
        ++i;
        ++generated_instrs_;
        if (truncatesChunk(in.op)) {
            reason = ChunkEnd::kHardInstr;
            break;
        }
    }
  chunk_end:

    if (blocked) {
        // i == 0: no spec lines inserted by this chunk yet; wait until
        // one of this processor's chunks commits and frees ways.
        ps.blockedOnOverflow = true;
        recycleChunk(std::move(chunk));
        return;
    }
    if (i == 0) {
        // Program ended exactly at a chunk boundary.
        if (ps.inflight.empty())
            ps.finished = true;
        recycleChunk(std::move(chunk));
        return;
    }

    c.size = i;
    c.endReason = reason;
    c.endCtx = ps.ctx;
    stats_.executedInstrs += i;

    if (opts_.replay && reason == ChunkEnd::kCacheOverflow) {
        // Unexpected overflow during replay: commit this piece, then
        // the rest of the logical chunk immediately after (4.2.3).
        ps.pendingRemainder = target - i;
        c.extra.remainderAfter = true;
        ++stats_.replaySplitChunks;
    } else {
        ps.pendingRemainder = 0;
        ps.nextSeq = seq + 1;
    }

    // Environment timing jitter (DRAM refresh, bank conflicts, ...):
    // non-architectural, so two recordings of the same workload have
    // genuinely different timing — which determinism must survive.
    cost *= 0.98 + 0.04 * env_rng_.uniform();

    // Wrong-path noise: cache pollution and spurious signature bits,
    // driven by the (non-architectural) environment RNG.
    if (env_rng_.chancePerMille(5)) {
        caches_.pollute(
            p, lineOf(AddressLayout::sharedWord(env_rng_.below(1 << 16))));
    }
    if (env_rng_.chancePerMille(2)) {
        // Spurious wrong-path load: enters the read set like real
        // Bulk hardware's wrong-path speculative loads do.
        const Addr noise_line =
            lineOf(AddressLayout::sharedWord(env_rng_.below(256)));
        c.sigs.read.insert(noise_line);
        c.extra.linesRead.insert(noise_line);
    }

    const Cycle duration =
        std::max<Cycle>(1, static_cast<Cycle>(cost + 0.5));
    c.finishTime = now + duration;
    schedule(now + duration, EvKind::kChunkDone, p, c.extra.uid);
    noteChunkInflight(p, c);
    ps.inflight.push_back(std::move(chunk));
}

void
ChunkEngine::onChunkDone(ProcId p, std::uint64_t uid, Cycle now)
{
    EngineChunk *c = findChunk(p, uid);
    if (!c || c->state != ChunkState::kExecuting)
        return; // stale event (chunk was squashed)
    c->state = ChunkState::kCompleted;
    c->finishTime = now;

    Cycle delay = arbLatency() / 2;
    if (opts_.perturb.enabled
        && perturb_rng_.chancePerMille(opts_.perturb.commitStallPerMille)) {
        delay += opts_.perturb.stallMinCycles
                 + perturb_rng_.below(opts_.perturb.stallMaxCycles
                                      - opts_.perturb.stallMinCycles + 1);
    }
    c->extra.requestTime = now + delay;
    schedule(now + delay, EvKind::kRequestArrive, p, uid);

    // PicoLog record: the token was parked here waiting for this chunk.
    if (!opts_.replay && mode_.mode == ExecMode::kPicoLog
        && !token_in_transit_ && token_proc_ == p
        && token_waiting_for_chunk_) {
        stats_.waitForCompleteCycles.add(
            static_cast<double>(now - token_arrive_time_));
        token_waiting_for_chunk_ = false;
    }

    tryStartChunk(p, now);
    if (!opts_.replay)
        checkDma(now);
}

void
ChunkEngine::squashFrom(ProcId p, std::size_t idx, Cycle now)
{
    ProcState &ps = procs_[p];
    assert(idx < ps.inflight.size());
    EngineChunk &oldest = *ps.inflight[idx];

    RestartInfo r;
    r.seq = oldest.seq;
    r.continuation = oldest.extra.continuation;
    r.pieceTarget = oldest.extra.pieceTarget;
    r.squashCount = oldest.squashCount + 1;
    r.collisionReduced = oldest.extra.collisionReduced;

    // Repeated-collision back-off (not in PicoLog, not during replay).
    if (!opts_.replay && mode_.mode != ExecMode::kPicoLog
        && r.squashCount >= machine_.bulk.collisionBackoffThreshold
        && r.pieceTarget > 1) {
        r.pieceTarget = std::max<InstrCount>(1, r.pieceTarget / 2);
        r.collisionReduced = true;
    }

    stats_.squashes += ps.inflight.size() - idx;

    // A chunk squashed mid-execution only really reached a fraction
    // of its accesses: roll back the cache fills of the unreached
    // tail so eager generation cannot prefetch for free.
    EngineChunk &youngest = *ps.inflight.back();
    if (youngest.state == ChunkState::kExecuting
        && youngest.finishTime > youngest.startTime) {
        const double f =
            static_cast<double>(now - youngest.startTime)
            / static_cast<double>(youngest.finishTime
                                  - youngest.startTime);
        const auto &fills = youngest.extra.fills;
        const std::size_t keep = static_cast<std::size_t>(
            static_cast<double>(fills.size()) * std::min(1.0, f));
        for (std::size_t k = keep; k < fills.size(); ++k) {
            caches_.l1(p).invalidate(fills[k].first);
            if (fills[k].second == HitLevel::kMemory)
                caches_.l2().invalidate(fills[k].first);
        }
    }

    // The only context copy of the squash/restart path: restore the
    // squashed chunk's start context straight into ps.ctx, where the
    // rebuild will find it (see RestartInfo).
    ps.ctx = oldest.startCtx;

    for (std::size_t k = idx; k < ps.inflight.size(); ++k) {
        spec_[p].removeAll(ps.inflight[k]->writtenLines);
        recycleChunk(std::move(ps.inflight[k]));
    }
    ps.inflight.erase(ps.inflight.begin() + static_cast<long>(idx),
                      ps.inflight.end());
    rebuildProcUnion(p);

    ps.pendingRemainder = 0;
    ps.nextSeq = r.seq;
    ps.blockedOnOverflow = false;
    if (ps.stalled) {
        ps.stallCycles += now - ps.stallStart;
        ps.stalled = false;
    }
    ps.restart = r;
    schedule(now + kSquashPenalty, EvKind::kProcResume, p, 0);
}

// ---------------------------------------------------------------------------
// Arbiter
// ---------------------------------------------------------------------------

bool
ChunkEngine::conflictsWith(const EngineChunk &running,
                           const std::vector<Addr> &write_lines,
                           const Signature &write_sig)
{
    if (machine_.bulk.exactDisambiguation) {
        for (const Addr line : write_lines) {
            if (running.extra.linesRead.contains(line)
                || running.extra.linesWritten.contains(line))
                return true;
        }
        return false;
    }
    return sigConflict(running.sigs, write_sig);
}

bool
ChunkEngine::sigConflict(const SignaturePair &running,
                         const Signature &wsig)
{
    if (!summary_filter_)
        return running.read.intersectsWords(wsig)
               || running.write.intersectsWords(wsig);
    bool conflict = false;
    if (wsig.summaryIntersects(running.read)) {
        ++stats_.sigSummaryHits;
        conflict = wsig.intersectsWords(running.read);
    } else {
        ++stats_.sigSummaryRejects;
    }
    if (!conflict) {
        if (wsig.summaryIntersects(running.write)) {
            ++stats_.sigSummaryHits;
            conflict = wsig.intersectsWords(running.write);
        } else {
            ++stats_.sigSummaryRejects;
        }
    }
    return conflict;
}

void
ChunkEngine::sweepConflicts(ProcId committing,
                            const std::vector<Addr> &write_lines,
                            const Signature &write_sig, Cycle now)
{
    if (write_lines.empty())
        return; // an empty write set can never conflict
    bool walked = false;
    for (ProcId q = 0; q < n_; ++q) {
        if (q == committing)
            continue;
        auto &other = procs_[q].inflight;
        if (other.empty())
            continue;
        // The per-processor union over-approximates every in-flight
        // chunk's signatures, so a committing write that misses it in
        // any bank cannot conflict with any of q's chunks — even
        // under exact disambiguation, where a line conflict implies a
        // signature conflict.
        if (summary_filter_ && !write_sig.intersects(proc_unions_[q]))
            continue;
        walked = true;
        for (std::size_t k = 0; k < other.size(); ++k) {
            if (conflictsWith(*other[k], write_lines, write_sig)) {
                squashFrom(q, k, now);
                break;
            }
        }
    }
    if (summary_filter_ && !walked)
        ++stats_.unionSweepSkips;
    else
        ++stats_.conflictSweeps;
    if (filter_mode_ == FilterMode::kAdaptive)
        maybeAdaptFilter();
}

void
ChunkEngine::maybeAdaptFilter()
{
    if (summary_filter_) {
        if (++filter_window_sweeps_ < kFilterProbeWindow)
            return;
        const std::uint64_t rejects =
            stats_.sigSummaryRejects - filter_window_rejects_;
        const std::uint64_t hits =
            stats_.sigSummaryHits - filter_window_hits_;
        const std::uint64_t skips =
            stats_.unionSweepSkips - filter_window_skips_;
        // The filter pays for itself when the summary prechecks
        // reject often (each reject saves a full word sweep) or the
        // per-proc unions skip whole processors. Below a 25% benefit
        // rate on both counts the prechecks and union upkeep are pure
        // overhead — exactly the conflict-heavy profile where every
        // summary intersects — so drop them until the next re-probe.
        const std::uint64_t tests = rejects + hits;
        const bool summaries_pay = tests != 0 && rejects * 4 >= tests;
        const bool unions_pay = skips * 4 >= filter_window_sweeps_;
        if (!summaries_pay && !unions_pay) {
            summary_filter_ = false;
            filter_off_sweeps_ = 0;
            ++stats_.sigFilterDeactivations;
        }
        filter_window_sweeps_ = 0;
        filter_window_hits_ = stats_.sigSummaryHits;
        filter_window_rejects_ = stats_.sigSummaryRejects;
        filter_window_skips_ = stats_.unionSweepSkips;
    } else {
        if (++filter_off_sweeps_ < kFilterReprobePeriod)
            return;
        // Re-probe: union upkeep was suspended while the filter was
        // off, so rebuild every processor's in-flight union before
        // trusting it again.
        summary_filter_ = true;
        filter_off_sweeps_ = 0;
        filter_window_sweeps_ = 0;
        filter_window_hits_ = stats_.sigSummaryHits;
        filter_window_rejects_ = stats_.sigSummaryRejects;
        filter_window_skips_ = stats_.unionSweepSkips;
        for (ProcId p = 0; p < n_; ++p)
            rebuildProcUnion(p);
    }
}

void
ChunkEngine::noteChunkInflight(ProcId p, const EngineChunk &chunk)
{
    if (!summary_filter_)
        return; // unions are rebuilt wholesale on re-probe
    proc_unions_[p].unionWith(chunk.sigs.read);
    proc_unions_[p].unionWith(chunk.sigs.write);
}

void
ChunkEngine::rebuildProcUnion(ProcId p)
{
    // The union cannot subtract, so recompute it from the processor's
    // surviving chunks whenever one leaves the window. clear() is an
    // epoch bump and the window holds only a handful of chunks, so
    // this stays cheap enough to run on every commit and squash.
    if (!summary_filter_)
        return;
    Signature &u = proc_unions_[p];
    u.clear();
    for (const auto &c : procs_[p].inflight) {
        u.unionWith(c->sigs.read);
        u.unionWith(c->sigs.write);
    }
}

unsigned
ChunkEngine::freeSlots(Cycle now) const
{
    if (shardedRecord()) {
        unsigned free = 0;
        for (const auto &pool : shard_slot_busy_)
            for (const Cycle busy : pool)
                if (busy <= now)
                    ++free;
        return free;
    }
    unsigned free = 0;
    for (const Cycle busy : slot_busy_until_)
        if (busy <= now)
            ++free;
    return free;
}

unsigned
ChunkEngine::busySlots(Cycle now) const
{
    const unsigned total =
        shardedRecord()
            ? shards_ * machine_.bulk.maxConcurrentCommits
            : static_cast<unsigned>(slot_busy_until_.size());
    return total - freeSlots(now);
}

std::uint64_t
ChunkEngine::chunkShardMask(EngineChunk &c) const
{
    ChunkExtra &x = c.extra;
    if (!x.shardMaskValid) {
        std::uint64_t m = 0;
        for (const Addr line : x.linesRead)
            m |= 1ull << Signature::shardOf(line, shards_);
        for (const Addr line : x.linesWritten)
            m |= 1ull << Signature::shardOf(line, shards_);
        // A chunk touching no lines conflicts with nothing; park it in
        // shard 0 so every logged mask is non-empty.
        x.shardMask = m == 0 ? 1 : m;
        x.shardMaskValid = true;
    }
    return x.shardMask;
}

std::uint64_t
ChunkEngine::dmaShardMask(const DmaTransfer &xfer) const
{
    std::uint64_t m = 0;
    for (const Addr word : xfer.wordAddrs)
        m |= 1ull << Signature::shardOf(lineOf(word), shards_);
    return m == 0 ? 1 : m;
}

bool
ChunkEngine::canOccupyShards(std::uint64_t mask, Cycle now) const
{
    if (std::popcount(mask) > 1 && root_slot_busy_ > now)
        return false;
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
        const auto &pool =
            shard_slot_busy_[static_cast<unsigned>(std::countr_zero(m))];
        bool free = false;
        for (const Cycle busy : pool)
            if (busy <= now) {
                free = true;
                break;
            }
        if (!free)
            return false;
    }
    return true;
}

void
ChunkEngine::occupyShards(std::uint64_t mask, Cycle now, Cycle occupancy)
{
    if (std::popcount(mask) > 1)
        root_slot_busy_ = now + occupancy;
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
        auto &pool =
            shard_slot_busy_[static_cast<unsigned>(std::countr_zero(m))];
        for (Cycle &busy : pool)
            if (busy <= now) {
                busy = now + occupancy;
                break;
            }
    }
    schedule(now + occupancy, EvKind::kCommitFinish, 0, 0);
}

ChunkEngine::EngineChunk *
ChunkEngine::oldestReady(ProcId p)
{
    auto &inflight = procs_[p].inflight;
    if (inflight.empty())
        return nullptr;
    EngineChunk *c = inflight.front().get();
    if (c->state == ChunkState::kCompleted && c->extra.requestArrived)
        return c;
    return nullptr;
}

unsigned
ChunkEngine::countReadyProcs() const
{
    unsigned ready = 0;
    for (const auto &ps : procs_) {
        if (!ps.inflight.empty()
            && ps.inflight.front()->state == ChunkState::kCompleted)
            ++ready;
    }
    return ready;
}

bool
ChunkEngine::allFinished() const
{
    for (const auto &ps : procs_)
        if (!ps.finished)
            return false;
    return true;
}

bool
ChunkEngine::anyMustContinue() const
{
    for (const auto &ps : procs_)
        if (ps.mustContinue)
            return true;
    return false;
}

bool
ChunkEngine::dmaDueForReplay() const
{
    if (dma_replay_idx_ >= prior_->dma.count())
        return false;
    if (mode_.mode == ExecMode::kPicoLog)
        return gcc_ == prior_->dma.slotAt(dma_replay_idx_);
    if (strata_cursor_)
        return strata_cursor_->isDmaSlot();
    if (po_cursor_)
        return po_cursor_->dmaReady();
    return !pi_cursor_->atEnd() && pi_cursor_->peek() == kDmaProcId;
}

bool
ChunkEngine::dmaIsNext(Cycle) const
{
    if (anyMustContinue())
        return false;
    if (opts_.replay)
        return dmaDueForReplay();
    return !dma_pending_.empty();
}

void
ChunkEngine::checkDma(Cycle)
{
    // Poll only; the next arbiter invocation drains dma_pending_.
    if (opts_.replay)
        return;
    DmaTransfer xfer;
    while (dma_dev_.poll(generated_instrs_, xfer))
        dma_pending_.push_back(xfer);
}

ChunkEngine::EngineChunk *
ChunkEngine::pickCandidate(Cycle now, ProcId &out_proc)
{
    // A split logical chunk must finish before anything else commits.
    for (ProcId p = 0; p < n_; ++p) {
        if (procs_[p].mustContinue) {
            EngineChunk *c = oldestReady(p);
            if (c) {
                out_proc = p;
                return c;
            }
            return nullptr; // wait for the continuation piece
        }
    }

    if (!opts_.replay) {
        // Record, Order&Size / OrderOnly: FCFS over arrived requests.
        // Under the sharded hierarchy the FCFS winner is the oldest
        // request whose shard slots are free — younger shard-disjoint
        // requests bypass an older one blocked on a busy shard, which
        // is exactly the concurrency the shard arbiters add.
        EngineChunk *best = nullptr;
        ProcId best_p = 0;
        for (ProcId p = 0; p < n_; ++p) {
            EngineChunk *c = oldestReady(p);
            if (!c)
                continue;
            if (shardedRecord()
                && !canOccupyShards(chunkShardMask(*c), now))
                continue;
            if (!best || c->extra.requestTime < best->extra.requestTime) {
                best = c;
                best_p = p;
            }
        }
        out_proc = best_p;
        return best;
    }

    if (mode_.mode == ExecMode::kPicoLog) {
        // Replay: predefined round-robin order; only finished
        // processors are skipped.
        for (unsigned guard = 0;
             guard < n_ && procs_[rr_next_].finished; ++guard) {
            rr_next_ = (rr_next_ + 1) % n_;
        }
        if (procs_[rr_next_].finished)
            return nullptr; // everyone is done
        EngineChunk *c = oldestReady(rr_next_);
        if (c)
            out_proc = rr_next_;
        return c; // null: wait for rr_next_'s chunk to complete
    }

    if (strata_cursor_) {
        // Stratified replay: anyone with budget in the current stratum.
        if (strata_cursor_->atEnd() || strata_cursor_->isDmaSlot())
            return nullptr;
        EngineChunk *best = nullptr;
        ProcId best_p = 0;
        for (ProcId p = 0; p < n_; ++p) {
            if (strata_cursor_->remainingFor(p) == 0)
                continue;
            EngineChunk *c = oldestReady(p);
            if (c && (!best || c->extra.requestTime < best->extra.requestTime)) {
                best = c;
                best_p = p;
            }
        }
        out_proc = best_p;
        return best;
    }

    if (po_cursor_) {
        // Partial-order replay: any processor whose next logged entry
        // is enabled (head of its program order and of every shard
        // order its mask names) may commit; FCFS among them.
        EngineChunk *best = nullptr;
        ProcId best_p = 0;
        for (ProcId p = 0; p < n_; ++p) {
            if (!po_cursor_->procReady(p))
                continue;
            EngineChunk *c = oldestReady(p);
            if (c
                && (!best
                    || c->extra.requestTime < best->extra.requestTime)) {
                best = c;
                best_p = p;
            }
        }
        out_proc = best_p;
        return best;
    }

    // Replay with a plain PI log: strictly the recorded order.
    if (pi_cursor_->atEnd())
        return nullptr;
    const ProcId p = pi_cursor_->peek();
    if (p == kDmaProcId)
        return nullptr; // handled by dmaIsNext
    EngineChunk *c = oldestReady(p);
    if (c)
        out_proc = p;
    return c;
}

void
ChunkEngine::arbiterProcess(Cycle now)
{
    checkDma(now);

    if (!opts_.replay && mode_.mode == ExecMode::kPicoLog) {
        // Record-PicoLog: DMA grabs free slots; chunks follow the token.
        while (!dma_pending_.empty() && freeSlots(now) > 0)
            grantDma(now);
        tokenTry(now);
        return;
    }

    while (freeSlots(now) > 0 && !stopped_) {
        if (dmaIsNext(now)
            && (!shardedRecord()
                || canOccupyShards(dmaShardMask(dma_pending_.front()),
                                   now))) {
            grantDma(now);
            continue;
        }
        ProcId p = 0;
        EngineChunk *c = pickCandidate(now, p);
        if (!c)
            break;
        grantChunk(p, now);
    }

    // Replay head-stall accounting: a slot is free and some completed
    // chunk is waiting, but the log head names a processor whose chunk
    // has not arrived — the serialization the lookahead window cannot
    // hide. The stall is charged when the head finally commits.
    if (opts_.replay && head_stall_since_ == kNoCycle
        && freeSlots(now) > 0) {
        for (ProcId p = 0; p < n_; ++p) {
            if (oldestReady(p)) {
                head_stall_since_ = now;
                break;
            }
        }
    }
}

void
ChunkEngine::grantChunk(ProcId p, Cycle now)
{
    ProcState &ps = procs_[p];
    assert(!ps.inflight.empty());
    EngineChunk &c = *ps.inflight.front();
    assert(c.state == ChunkState::kCompleted && c.extra.requestArrived);

    // Occupy a commit slot. During replay the (virtualized) arbiter
    // serializes commits and each occupies it for the full raised
    // arbitration latency (Section 6.2.1).
    const Cycle occupancy = opts_.replay
                                ? arbLatency() + commitLatency()
                                : commitLatency();
    if (shardedRecord()) {
        const std::uint64_t mask = chunkShardMask(c);
        occupyShards(mask, now, occupancy);
        if (std::popcount(mask) > 1)
            ++stats_.crossShardCommits;
        else
            ++stats_.shardLocalCommits;
    } else {
        for (auto &busy : slot_busy_until_) {
            if (busy <= now) {
                busy = now + occupancy;
                schedule(busy, EvKind::kCommitFinish, 0, 0);
                break;
            }
        }
    }
    stats_.readyProcsAtCommit.add(static_cast<double>(countReadyProcs()));
    stats_.parallelCommits.add(static_cast<double>(busySlots(now)));
    if (opts_.replay) {
        stats_.replayWindowOccupancy.add(
            static_cast<double>(busySlots(now)));
        if (head_stall_since_ != kNoCycle) {
            stats_.replayHeadStallCycles += now - head_stall_since_;
            head_stall_since_ = kNoCycle;
        }
        if (strata_cursor_) {
            for (ProcId q = 0; q < n_; ++q) {
                if (q != p && strata_cursor_->remainingFor(q) > 0) {
                    ++stats_.strataRelaxedRetires;
                    break;
                }
            }
        }
    }

    const bool final_piece = !c.extra.remainderAfter;

    // ----- logging (record) ---------------------------------------------
    if (!opts_.replay && opts_.logging) {
        if (mode_.mode != ExecMode::kPicoLog) {
            if (stratifier_) {
                if (machine_.bulk.exactDisambiguation) {
                    stratifier_->onCommitLines(p, c.extra.linesRead,
                                               c.extra.linesWritten);
                } else {
                    Signature s = c.sigs.read;
                    s.unionWith(c.sigs.write);
                    stratifier_->onCommit(p, s);
                }
            } else if (rec_->pi.hasMasks()) {
                rec_->pi.appendWithMask(p, chunkShardMask(c));
            } else {
                rec_->pi.append(p);
            }
        }
        if (mode_.mode == ExecMode::kOrderAndSize) {
            rec_->cs[p].appendCommittedSize(c.seq, c.size,
                                            c.size == mode_.chunkSize);
        } else if (c.endReason == ChunkEnd::kCacheOverflow
                   || (c.endReason == ChunkEnd::kSizeLimit
                       && c.extra.collisionReduced)) {
            rec_->cs[p].appendTruncation(c.seq, c.size);
        }
        for (std::size_t k = 0; k < c.ioValues.size(); ++k) {
            rec_->io.append(p, c.startCtx.ioLoadCount + k, c.ioValues[k]);
        }
    }

    // ----- truncation statistics ----------------------------------------
    if (c.endReason == ChunkEnd::kCacheOverflow)
        ++stats_.overflowTruncations;
    else if (c.endReason == ChunkEnd::kSizeLimit && c.extra.collisionReduced)
        ++stats_.collisionTruncations;
    else if (c.endReason == ChunkEnd::kHardInstr)
        ++stats_.hardTruncations;

    // ----- replay cursor consumption --------------------------------------
    if (opts_.replay) {
        if (!c.extra.continuation && mode_.mode != ExecMode::kPicoLog
            && !strata_cursor_) {
            if (po_cursor_) {
                // Consume p's next entry under the partial order; the
                // grant was issued against procReady(p), but a corrupt
                // log must fail loudly, not desynchronize.
                if (!po_cursor_->procReady(p))
                    throw ReplayError(
                        "partial-order PI log violated: proc "
                        + std::to_string(p)
                        + " committed with its next entry disabled");
                const std::size_t low = po_cursor_->lowWatermark();
                const std::size_t entry = po_cursor_->consumeProc(p);
                po_fp_pos_[p] = po_cursor_->chunkPosOf(entry);
                ps.obsPos = entry;
                if (entry != low)
                    ++stats_.poRelaxedRetires;
                if (std::popcount(prior_->pi.maskAt(entry)) > 1)
                    ++stats_.crossShardCommits;
                else
                    ++stats_.shardLocalCommits;
            } else {
                // The grant was issued against peek() == p and nothing
                // else consumes the cursor in between, but a corrupted
                // log must fail loudly rather than silently
                // desynchronize.
                if (pi_cursor_->atEnd())
                    throw ReplayLogExhausted(
                        "PI log ended before all chunks committed");
                const ProcId logged = pi_cursor_->next();
                if (logged != p)
                    throw ReplayError(
                        "PI log order violated at entry "
                        + std::to_string(pi_cursor_->position() - 1)
                        + ": log says proc " + std::to_string(logged)
                        + ", committing proc " + std::to_string(p));
                ps.obsPos = pi_cursor_->position() - 1;
            }
        }
        if (final_piece) {
            if (strata_cursor_)
                strata_cursor_->consume(p);
            if (mode_.mode == ExecMode::kPicoLog)
                rr_next_ = (p + 1) % n_;
        }
    }

    // ----- make the chunk architectural ----------------------------------
    for (const auto &[word, value] : c.writes)
        mem_.store(word, value);
    for (const Addr line : c.writtenLines) {
        if (dir_.sharersOf(line) & ~(1ull << p)) {
            dir_.commitWrite(p, line);
            caches_.invalidateOthers(p, line);
        }
    }
    dir_.countSignatureMessage(machine_.bulk.signatureBits);
    spec_[p].removeAll(c.writtenLines);

    stats_.retiredInstrs += c.size;

    const bool observing = obs_hub_ && obs_hub_->enabled();
    if (observing) {
        // Split logical chunks deliver one merged observation at the
        // final piece; accumulate committed piece traces until then.
        if (ps.pendingTrace.empty())
            ps.pendingTrace = std::move(c.extra.trace);
        else
            ps.pendingTrace.insert(ps.pendingTrace.end(),
                                   c.extra.trace.begin(),
                                   c.extra.trace.end());
        c.extra.trace.clear();
    }

    if (final_piece) {
        const CommitRecord commit{p, c.seq, ps.partialSize + c.size,
                                  c.endCtx.acc};
        if (po_cursor_)
            fp_.commits[po_fp_pos_[p]] = commit;
        else
            fp_.commits.push_back(commit);
        if (observing) {
            // Canonical commit position: the consumed PI entry index
            // (flat and partial-order cursors), the current global
            // commit count (PicoLog retires in GCC order by
            // construction), or the precomputed strata linearization
            // (a stratified replay's intra-stratum order is timing-
            // dependent, so the log fixes the canonical one).
            std::uint64_t pos;
            if (strata_cursor_) {
                if (c.seq >= strata_order_->chunkPos[p].size())
                    throw ReplayError(
                        "strata log names fewer chunks for proc "
                        + std::to_string(p) + " than were committed");
                pos = strata_order_->chunkPos[p][c.seq];
            } else if (mode_.mode == ExecMode::kPicoLog) {
                pos = gcc_;
            } else {
                pos = ps.obsPos;
            }
            obs_hub_->chunkRetired(pos, p, c.seq,
                                   ps.partialSize + c.size,
                                   std::move(ps.pendingTrace));
            ps.pendingTrace.clear();
        }
        ps.partialSize = 0;
        ps.mustContinue = false;
        ps.lastCommittedCtx = c.endCtx;
        ps.committedCount = c.seq + 1;
        ++stats_.committedChunks;
        ++gcc_;
        maybeCheckpoint();
        if (opts_.replay && opts_.stopCheckpoint
            && gcc_ == opts_.stopCheckpoint->gcc)
            stopped_ = true;
    } else {
        ps.partialSize += c.size;
        ps.mustContinue = true;
    }

    // ----- squash conflicting chunks on other processors ------------------
    // Move the committed chunk out of the inflight window (so it is
    // not scanned for conflicts against itself) but keep it alive:
    // its write signature and line list are used in place instead of
    // being copied, and the buffers are recycled afterwards.
    auto committed = std::move(ps.inflight.front());
    ps.inflight.pop_front();
    sweepConflicts(p, committed->writtenLines, committed->sigs.write, now);
    recycleChunk(std::move(committed));
    rebuildProcUnion(p);

    // ----- resume this processor ------------------------------------------
    ps.blockedOnOverflow = false;
    if (ps.stalled) {
        ps.stallCycles += now - ps.stallStart;
        ps.stalled = false;
    }
    tryStartChunk(p, now);
    if (!opts_.replay)
        checkDma(now);
}

void
ChunkEngine::grantDma(Cycle now)
{
    DmaTransfer xfer;
    if (!opts_.replay) {
        xfer = dma_pending_.front();
        dma_pending_.pop_front();
        if (opts_.logging) {
            rec_->dma.append(xfer, gcc_);
            if (mode_.mode != ExecMode::kPicoLog) {
                if (stratifier_)
                    stratifier_->onDmaCommit();
                else if (rec_->pi.hasMasks())
                    rec_->pi.appendWithMask(kDmaProcId,
                                            dmaShardMask(xfer));
                else
                    rec_->pi.append(kDmaProcId);
            }
        }
    } else {
        xfer = prior_->dma.transferAt(dma_replay_idx_);
        ++dma_replay_idx_;
        std::uint64_t obs_pos = gcc_; // PicoLog: DMA slot = current GCC
        if (mode_.mode != ExecMode::kPicoLog) {
            if (strata_cursor_) {
                strata_cursor_->consumeDma();
                if (strata_order_) {
                    if (dma_replay_idx_ - 1
                        >= strata_order_->dmaPos.size())
                        throw ReplayError(
                            "strata log names fewer DMA slots than "
                            "transfers committed");
                    obs_pos =
                        strata_order_->dmaPos[dma_replay_idx_ - 1];
                }
            } else if (po_cursor_) {
                obs_pos = po_cursor_->consumeProc(kDmaProcId);
            } else {
                pi_cursor_->next();
                obs_pos = pi_cursor_->position() - 1;
            }
        }
        if (obs_hub_ && obs_hub_->enabled())
            obs_hub_->dmaRetired(
                obs_pos, prior_->dma.transferAt(dma_replay_idx_ - 1));
    }

    // Occupy a commit slot (see grantChunk for replay occupancy).
    const Cycle occupancy = opts_.replay
                                ? arbLatency() + commitLatency()
                                : commitLatency();
    if (shardedRecord()) {
        const std::uint64_t mask = dmaShardMask(xfer);
        occupyShards(mask, now, occupancy);
        if (std::popcount(mask) > 1)
            ++stats_.crossShardCommits;
        else
            ++stats_.shardLocalCommits;
    } else {
        for (auto &busy : slot_busy_until_) {
            if (busy <= now) {
                busy = now + occupancy;
                schedule(busy, EvKind::kCommitFinish, 0, 0);
                break;
            }
        }
    }
    if (opts_.replay) {
        stats_.replayWindowOccupancy.add(
            static_cast<double>(busySlots(now)));
        if (head_stall_since_ != kNoCycle) {
            stats_.replayHeadStallCycles += now - head_stall_since_;
            head_stall_since_ = kNoCycle;
        }
    }

    Signature wsig;
    std::vector<Addr> wlines;
    for (std::size_t i = 0; i < xfer.wordAddrs.size(); ++i) {
        mem_.store(wordOf(xfer.wordAddrs[i]), xfer.values[i]);
        const Addr line = lineOf(xfer.wordAddrs[i]);
        if (wlines.empty() || wlines.back() != line)
            wlines.push_back(line);
        wsig.insert(line);
        for (ProcId p = 0; p < n_; ++p)
            caches_.l1(p).invalidate(line);
        dir_.countControlMessage();
    }
    dir_.countLineTransfer();

    sweepConflicts(kDmaProcId, wlines, wsig, now);

    ++dma_granted_;
    ++gcc_;
    maybeCheckpoint();
    if (opts_.replay && opts_.stopCheckpoint
        && gcc_ == opts_.stopCheckpoint->gcc)
        stopped_ = true;
}

// ---------------------------------------------------------------------------
// PicoLog record commit token
// ---------------------------------------------------------------------------

void
ChunkEngine::onTokenArrive(ProcId p, Cycle now)
{
    token_in_transit_ = false;
    token_proc_ = p;
    token_arrive_time_ = now;
    token_waiting_for_chunk_ = false;
    token_waiting_for_slot_ = false;

    if (p == 0) {
        if (token_round_start_ != kNoCycle) {
            stats_.tokenRoundtripCycles.add(
                static_cast<double>(now - token_round_start_));
        }
        token_round_start_ = now;
    }

    ProcState &ps = procs_[p];
    if (ps.finished) {
        passToken(p, now);
        return;
    }

    EngineChunk *c = oldestReady(p);
    if (c) {
        ++stats_.tokenArrivalsReady;
        stats_.waitForTokenCycles.add(
            static_cast<double>(now - c->finishTime));
    } else {
        ++stats_.tokenArrivalsNotReady;
        token_waiting_for_chunk_ = true;
    }
    tokenTry(now);
}

void
ChunkEngine::tokenTry(Cycle now)
{
    if (token_in_transit_)
        return;
    const ProcId p = token_proc_;
    ProcState &ps = procs_[p];
    if (ps.finished) {
        passToken(p, now);
        return;
    }
    EngineChunk *c = oldestReady(p);
    if (!c)
        return; // retried on chunk completion / request arrival
    if (freeSlots(now) == 0) {
        token_waiting_for_slot_ = true;
        return; // retried on commit finish
    }
    token_waiting_for_slot_ = false;
    token_waiting_for_chunk_ = false;
    grantChunk(p, now);
    passToken(p, now);
}

void
ChunkEngine::passToken(ProcId p, Cycle now)
{
    for (unsigned step = 1; step <= n_; ++step) {
        const ProcId q = (p + step) % n_;
        if (!procs_[q].finished) {
            token_in_transit_ = true;
            schedule(now + kTokenHop * step, EvKind::kTokenArrive, q, 0);
            return;
        }
    }
    // Everyone finished: the token retires.
}

} // namespace delorean
