#include "core/stratifier.hpp"

#include <cassert>

namespace delorean
{

namespace
{

unsigned
bitsForCount(unsigned max_value)
{
    unsigned bits = 1;
    while ((1u << bits) <= max_value)
        ++bits;
    return bits;
}

} // namespace

Stratifier::Stratifier(unsigned num_procs, unsigned max_chunks_per_proc)
    : num_procs_(num_procs),
      max_per_proc_(max_chunks_per_proc),
      counter_bits_(bitsForCount(max_chunks_per_proc)),
      counters_(num_procs, 0),
      srs_(num_procs),
      sr_reads_(num_procs),
      sr_writes_(num_procs)
{
    assert(max_chunks_per_proc >= 1);
}

void
Stratifier::cutStratum()
{
    if (!any_pending_)
        return;
    Stratum s;
    s.counts.assign(counters_.begin(), counters_.end());
    strata_.push_back(std::move(s));
    for (auto &c : counters_)
        c = 0;
    for (auto &sr : srs_)
        sr.clear();
    for (auto &set : sr_reads_)
        set.clear();
    for (auto &set : sr_writes_)
        set.clear();
    any_pending_ = false;
}

void
Stratifier::onCommit(ProcId proc, const Signature &sig)
{
    assert(proc < num_procs_);

    // Counter overflow forces a new stratum (Figure 5 example: S2).
    if (counters_[proc] >= max_per_proc_) {
        cutStratum();
    } else {
        // Conflict with any *other* processor's SR forces a stratum.
        for (ProcId p = 0; p < num_procs_; ++p) {
            if (p != proc && sig.intersects(srs_[p])) {
                cutStratum();
                break;
            }
        }
    }

    srs_[proc].unionWith(sig);
    ++counters_[proc];
    any_pending_ = true;
}

void
Stratifier::onCommitLines(ProcId proc, const FlatSet<Addr> &reads,
                          const FlatSet<Addr> &writes)
{
    assert(proc < num_procs_);

    if (counters_[proc] >= max_per_proc_) {
        cutStratum();
    } else {
        bool conflict = false;
        for (ProcId q = 0; q < num_procs_ && !conflict; ++q) {
            if (q == proc)
                continue;
            for (const Addr line : writes) {
                if (sr_reads_[q].contains(line)
                    || sr_writes_[q].contains(line)) {
                    conflict = true;
                    break;
                }
            }
            if (!conflict) {
                for (const Addr line : reads) {
                    if (sr_writes_[q].contains(line)) {
                        conflict = true;
                        break;
                    }
                }
            }
        }
        if (conflict)
            cutStratum();
    }

    for (const Addr line : reads)
        sr_reads_[proc].insert(line);
    for (const Addr line : writes)
        sr_writes_[proc].insert(line);
    ++counters_[proc];
    any_pending_ = true;
}

void
Stratifier::onDmaCommit()
{
    cutStratum();
    Stratum s;
    s.counts.assign(num_procs_, 0);
    s.isDma = true;
    strata_.push_back(std::move(s));
}

void
Stratifier::finish()
{
    cutStratum();
}

std::vector<std::uint8_t>
Stratifier::packedBytes() const
{
    BitWriter writer;
    for (const auto &s : strata_)
        for (const auto c : s.counts)
            writer.write(c, counter_bits_);
    return writer.bytes();
}

} // namespace delorean
