#include "core/pi_log.hpp"

#include <bit>
#include <cassert>

namespace delorean
{

namespace
{

unsigned
bitsFor(unsigned distinct_values)
{
    unsigned bits = 1;
    while ((1u << bits) < distinct_values)
        ++bits;
    return bits;
}

} // namespace

PiLog::PiLog(unsigned num_procs)
    : num_procs_(num_procs),
      entry_bits_(bitsFor(num_procs + 1)),
      dma_code_(static_cast<std::uint16_t>(num_procs))
{
}

void
PiLog::append(ProcId proc)
{
    std::uint16_t code;
    if (proc == kDmaProcId) {
        code = dma_code_;
    } else {
        assert(proc < num_procs_);
        code = static_cast<std::uint16_t>(proc);
    }
    entries_.push_back(code);
    packed_.write(code, entry_bits_);
}

void
PiLog::enableMasks(unsigned shard_count)
{
    assert(entries_.empty());
    assert(shard_count >= 1 && shard_count <= 64);
    mask_bits_ = shard_count;
}

void
PiLog::appendWithMask(ProcId proc, std::uint64_t shard_mask)
{
    assert(hasMasks());
    append(proc);
    masks_.push_back(shard_mask);
    if (mask_bits_ >= 64) {
        packed_.write(static_cast<std::uint32_t>(shard_mask), 32);
        packed_.write(static_cast<std::uint32_t>(shard_mask >> 32), 32);
    } else if (mask_bits_ > 32) {
        packed_.write(static_cast<std::uint32_t>(shard_mask), 32);
        packed_.write(static_cast<std::uint32_t>(shard_mask >> 32),
                      mask_bits_ - 32);
    } else {
        packed_.write(static_cast<std::uint32_t>(shard_mask), mask_bits_);
    }
}

const std::vector<std::uint8_t> &
PiLog::packedBytes() const
{
    return packed_.bytes();
}

PartialOrderCursor::PartialOrderCursor(const PiLog &log,
                                       unsigned num_procs,
                                       unsigned shards)
    : log_(&log), num_procs_(num_procs), shards_(shards),
      proc_queue_(num_procs + 1), proc_head_(num_procs + 1, 0),
      shard_queue_(shards), shard_head_(shards, 0)
{
    assert(log.hasMasks());
    chunk_pos_.resize(log.entryCount());
    consumed_flag_.assign(log.entryCount(), false);
    for (std::size_t i = 0; i < log.entryCount(); ++i) {
        const ProcId p = log.entryAt(i);
        const std::uint32_t idx = static_cast<std::uint32_t>(i);
        proc_queue_[queueOf(p)].push_back(idx);
        std::uint64_t mask = log.maskAt(i);
        while (mask != 0) {
            const unsigned s =
                static_cast<unsigned>(std::countr_zero(mask));
            assert(s < shards_);
            shard_queue_[s].push_back(idx);
            mask &= mask - 1;
        }
        chunk_pos_[i] = static_cast<std::uint32_t>(chunk_entries_);
        if (p != kDmaProcId)
            ++chunk_entries_;
    }
}

bool
PartialOrderCursor::procReady(ProcId proc) const
{
    const unsigned q = queueOf(proc);
    if (proc_head_[q] >= proc_queue_[q].size())
        return false;
    const std::uint32_t i = proc_queue_[q][proc_head_[q]];
    std::uint64_t mask = log_->maskAt(i);
    while (mask != 0) {
        const unsigned s = static_cast<unsigned>(std::countr_zero(mask));
        if (shard_head_[s] >= shard_queue_[s].size()
            || shard_queue_[s][shard_head_[s]] != i)
            return false;
        mask &= mask - 1;
    }
    return true;
}

std::size_t
PartialOrderCursor::consumeProc(ProcId proc)
{
    assert(procReady(proc));
    const unsigned q = queueOf(proc);
    const std::uint32_t i = proc_queue_[q][proc_head_[q]++];
    std::uint64_t mask = log_->maskAt(i);
    while (mask != 0) {
        const unsigned s = static_cast<unsigned>(std::countr_zero(mask));
        ++shard_head_[s];
        mask &= mask - 1;
    }
    ++consumed_;
    consumed_flag_[i] = true;
    while (low_ < consumed_flag_.size() && consumed_flag_[low_])
        ++low_;
    return i;
}

} // namespace delorean
