#include "core/pi_log.hpp"

#include <cassert>

namespace delorean
{

namespace
{

unsigned
bitsFor(unsigned distinct_values)
{
    unsigned bits = 1;
    while ((1u << bits) < distinct_values)
        ++bits;
    return bits;
}

} // namespace

PiLog::PiLog(unsigned num_procs)
    : num_procs_(num_procs),
      entry_bits_(bitsFor(num_procs + 1)),
      dma_code_(static_cast<std::uint16_t>(num_procs))
{
}

void
PiLog::append(ProcId proc)
{
    std::uint16_t code;
    if (proc == kDmaProcId) {
        code = dma_code_;
    } else {
        assert(proc < num_procs_);
        code = static_cast<std::uint16_t>(proc);
    }
    entries_.push_back(code);
    packed_.write(code, entry_bits_);
}

const std::vector<std::uint8_t> &
PiLog::packedBytes() const
{
    return packed_.bytes();
}

} // namespace delorean
