#include "core/cs_log.hpp"

#include <algorithm>

namespace delorean
{

namespace
{

/** Clamp @p v into @p bits (format fields are fixed width). */
std::uint64_t
clampBits(std::uint64_t v, unsigned bits)
{
    const std::uint64_t max = (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
    return std::min(v, max);
}

} // namespace

std::uint64_t
CsLog::sizeBits() const
{
    if (mode_.mode == ExecMode::kOrderAndSize) {
        std::uint64_t bits = 0;
        for (const auto &e : entries_)
            bits += e.maxSize ? 1 : 12;
        return bits;
    }
    return static_cast<std::uint64_t>(entries_.size())
           * (mode_.csDistanceBits + mode_.csSizeBits);
}

std::vector<std::uint8_t>
CsLog::packedBytes() const
{
    BitWriter writer;
    if (mode_.mode == ExecMode::kOrderAndSize) {
        for (const auto &e : entries_) {
            if (e.maxSize) {
                writer.write(1, 1);
            } else {
                writer.write(0, 1);
                writer.write(clampBits(e.size, 11), 11);
            }
        }
    } else {
        ChunkSeq last_trunc = 0;
        for (const auto &e : entries_) {
            const std::uint64_t distance = e.seq - last_trunc;
            writer.write(clampBits(distance, mode_.csDistanceBits),
                         mode_.csDistanceBits);
            writer.write(clampBits(e.size, mode_.csSizeBits),
                         mode_.csSizeBits);
            last_trunc = e.seq;
        }
    }
    return writer.bytes();
}

} // namespace delorean
