#include "core/cs_log.hpp"

#include <algorithm>

namespace delorean
{

namespace
{

/** Clamp @p v into @p bits (format fields are fixed width). */
std::uint64_t
clampBits(std::uint64_t v, unsigned bits)
{
    const std::uint64_t max = (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
    return std::min(v, max);
}

} // namespace

std::uint64_t
CsLog::sizeBits() const
{
    if (mode_.mode == ExecMode::kOrderAndSize) {
        std::uint64_t bits = 0;
        for (const auto &e : entries_)
            bits += e.maxSize ? 1 : 12;
        return bits;
    }
    return static_cast<std::uint64_t>(entries_.size())
           * (mode_.csDistanceBits + mode_.csSizeBits);
}

void
CsLog::pack(const CsEntry &entry)
{
    if (mode_.mode == ExecMode::kOrderAndSize) {
        if (entry.maxSize) {
            packed_.write(1, 1);
        } else {
            packed_.write(0, 1);
            packed_.write(clampBits(entry.size, 11), 11);
        }
        return;
    }
    const std::uint64_t distance = entry.seq - last_trunc_;
    packed_.write(clampBits(distance, mode_.csDistanceBits),
                  mode_.csDistanceBits);
    packed_.write(clampBits(entry.size, mode_.csSizeBits),
                  mode_.csSizeBits);
    last_trunc_ = entry.seq;
}

const std::vector<std::uint8_t> &
CsLog::packedBytes() const
{
    return packed_.bytes();
}

} // namespace delorean
