/**
 * @file
 * Shared binary-serialization primitives.
 *
 * The recording container (core/serialize.cpp) and the archive
 * container (store/archive.cpp) write the same little-endian
 * primitives — u64 fields, length-prefixed strings, ThreadContext
 * images, machine/mode headers and SystemCheckpoints. They live here
 * so the two formats cannot drift apart: an archived checkpoint is
 * byte-identical to one embedded in a .dlr recording.
 */

#ifndef DELOREAN_CORE_SERIALIZE_DETAIL_HPP_
#define DELOREAN_CORE_SERIALIZE_DETAIL_HPP_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/errors.hpp"
#include "core/checkpoint.hpp"

namespace delorean
{
namespace serialize_detail
{

inline void
putU64(std::ostream &out, std::uint64_t v)
{
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
    out.write(reinterpret_cast<const char *>(bytes), 8);
}

inline std::uint64_t
getU64(std::istream &in)
{
    std::uint8_t bytes[8];
    in.read(reinterpret_cast<char *>(bytes), 8);
    if (!in)
        throw RecordingFormatError("file truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    return v;
}

inline void
putString(std::ostream &out, const std::string &s)
{
    putU64(out, s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string
getString(std::istream &in)
{
    const std::uint64_t n = getU64(in);
    if (n > (1u << 20))
        throw RecordingFormatError("string too long");
    std::string s(n, '\0');
    in.read(s.data(), static_cast<std::streamsize>(n));
    if (!in)
        throw RecordingFormatError("file truncated");
    return s;
}

static_assert(std::is_trivially_copyable_v<ThreadContext>,
              "ThreadContext must stay trivially copyable: checkpoints "
              "serialize it by value");

inline void
putContext(std::ostream &out, const ThreadContext &ctx)
{
    char buf[sizeof(ThreadContext)];
    std::memcpy(buf, &ctx, sizeof(ThreadContext));
    out.write(buf, sizeof(ThreadContext));
}

inline ThreadContext
getContext(std::istream &in)
{
    char buf[sizeof(ThreadContext)];
    in.read(buf, sizeof(ThreadContext));
    if (!in)
        throw RecordingFormatError("file truncated");
    ThreadContext ctx;
    std::memcpy(&ctx, buf, sizeof(ThreadContext));
    return ctx;
}

inline void
putMode(std::ostream &out, const ModeConfig &mode)
{
    putU64(out, static_cast<std::uint64_t>(mode.mode));
    putU64(out, mode.chunkSize);
    putU64(out, mode.varSizeTruncatePercent);
    putU64(out, mode.csDistanceBits);
    putU64(out, mode.csSizeBits);
    putU64(out, mode.piProcIdBits);
    putU64(out, mode.stratifyChunksPerProc);
}

inline ModeConfig
getMode(std::istream &in)
{
    ModeConfig mode;
    mode.mode = static_cast<ExecMode>(getU64(in));
    mode.chunkSize = getU64(in);
    mode.varSizeTruncatePercent = static_cast<unsigned>(getU64(in));
    mode.csDistanceBits = static_cast<unsigned>(getU64(in));
    mode.csSizeBits = static_cast<unsigned>(getU64(in));
    mode.piProcIdBits = static_cast<unsigned>(getU64(in));
    mode.stratifyChunksPerProc = static_cast<unsigned>(getU64(in));
    return mode;
}

/** Machine header: 12 u64 fields since format v2 (numArbiters last). */
inline void
putMachine(std::ostream &out, const MachineConfig &m)
{
    putU64(out, m.numProcs);
    putU64(out, m.mem.l1SizeBytes);
    putU64(out, m.mem.l1Ways);
    putU64(out, m.mem.l2SizeBytes);
    putU64(out, m.mem.l2Ways);
    putU64(out, m.bulk.signatureBits);
    putU64(out, m.bulk.commitArbitration);
    putU64(out, m.bulk.maxConcurrentCommits);
    putU64(out, m.bulk.simultaneousChunks);
    putU64(out, m.bulk.collisionBackoffThreshold);
    putU64(out, m.bulk.exactDisambiguation ? 1 : 0);
    putU64(out, m.bulk.numArbiters);
}

/**
 * @param legacy_v1 parse the 11-field v1 header, which predates the
 *        sharded arbiter hierarchy; numArbiters reads as 1.
 */
inline MachineConfig
getMachine(std::istream &in, bool legacy_v1 = false)
{
    MachineConfig m;
    m.numProcs = static_cast<unsigned>(getU64(in));
    m.mem.l1SizeBytes = static_cast<unsigned>(getU64(in));
    m.mem.l1Ways = static_cast<unsigned>(getU64(in));
    m.mem.l2SizeBytes = static_cast<unsigned>(getU64(in));
    m.mem.l2Ways = static_cast<unsigned>(getU64(in));
    m.bulk.signatureBits = static_cast<unsigned>(getU64(in));
    m.bulk.commitArbitration = getU64(in);
    m.bulk.maxConcurrentCommits = static_cast<unsigned>(getU64(in));
    m.bulk.simultaneousChunks = static_cast<unsigned>(getU64(in));
    m.bulk.collisionBackoffThreshold =
        static_cast<unsigned>(getU64(in));
    m.bulk.exactDisambiguation = getU64(in) != 0;
    m.bulk.numArbiters = legacy_v1 ? 1
                                   : static_cast<unsigned>(getU64(in));
    return m;
}

/**
 * SystemCheckpoint image: gcc, dmaConsumed, rrNext, per-proc
 * {context, committedChunks}, then the memory population as
 * (addr, value) pairs in the snapshot's own iteration order —
 * deterministic for a given MemoryState, which keeps
 * save(load(x)) == x byte-exact.
 */
inline void
putCheckpoint(std::ostream &out, const SystemCheckpoint &ckpt)
{
    putU64(out, ckpt.gcc);
    putU64(out, ckpt.dmaConsumed);
    putU64(out, ckpt.rrNext);
    putU64(out, ckpt.contexts.size());
    for (std::size_t p = 0; p < ckpt.contexts.size(); ++p) {
        putContext(out, ckpt.contexts[p]);
        putU64(out, ckpt.committedChunks[p]);
    }
    putU64(out, ckpt.memory.population());
    // Canonical (address-sorted) word order: MemoryState iteration
    // order depends on insertion history, so two states holding the
    // same words can stream them differently. Sorting makes the
    // serialized image a pure function of the checkpoint's content —
    // the archive's byte-identity guarantee depends on this.
    std::vector<std::pair<Addr, std::uint64_t>> words;
    words.reserve(ckpt.memory.population());
    ckpt.memory.forEachWord([&words](Addr addr, std::uint64_t value) {
        words.emplace_back(addr, value);
    });
    std::sort(words.begin(), words.end());
    for (const auto &[addr, value] : words) {
        putU64(out, addr);
        putU64(out, value);
    }
}

inline SystemCheckpoint
getCheckpoint(std::istream &in)
{
    SystemCheckpoint ckpt;
    ckpt.gcc = getU64(in);
    ckpt.dmaConsumed = static_cast<std::size_t>(getU64(in));
    ckpt.rrNext = static_cast<ProcId>(getU64(in));
    const std::uint64_t n = getU64(in);
    if (n > 64)
        throw RecordingFormatError("checkpoint context count "
                                   + std::to_string(n)
                                   + " outside [0, 64]");
    for (std::uint64_t p = 0; p < n; ++p) {
        ckpt.contexts.push_back(getContext(in));
        ckpt.committedChunks.push_back(getU64(in));
    }
    const std::uint64_t words = getU64(in);
    for (std::uint64_t k = 0; k < words; ++k) {
        const Addr addr = getU64(in);
        const std::uint64_t value = getU64(in);
        ckpt.memory.store(addr, value);
    }
    return ckpt;
}

} // namespace serialize_detail
} // namespace delorean

#endif // DELOREAN_CORE_SERIALIZE_DETAIL_HPP_
