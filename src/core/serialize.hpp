/**
 * @file
 * Recording persistence: save a Recording to a file and load it back.
 *
 * A recorder box would stream its logs to stable storage; a developer
 * replays them later, possibly on a different machine. The format is a
 * simple little-endian binary container (magic + version + sections)
 * covering the memory-ordering logs, the input logs, the execution
 * fingerprint, the headline statistics and any system checkpoints.
 *
 * save(load(x)) == x for everything replay needs; see
 * tests/test_serialize.cpp.
 */

#ifndef DELOREAN_CORE_SERIALIZE_HPP_
#define DELOREAN_CORE_SERIALIZE_HPP_

#include <iosfwd>
#include <string>

#include "core/recording.hpp"

namespace delorean
{

/** Serialize @p rec to @p out. Throws std::runtime_error on failure. */
void saveRecording(const Recording &rec, std::ostream &out);

/** Serialize @p rec to file @p path. */
void saveRecordingFile(const Recording &rec, const std::string &path);

/** Deserialize a Recording. Throws std::runtime_error on bad input. */
Recording loadRecording(std::istream &in);

/** Deserialize a Recording from file @p path. */
Recording loadRecordingFile(const std::string &path);

} // namespace delorean

#endif // DELOREAN_CORE_SERIALIZE_HPP_
