/**
 * @file
 * Recording persistence: save a Recording to a file and load it back.
 *
 * A recorder box would stream its logs to stable storage; a developer
 * replays them later, possibly on a different machine. The format is a
 * simple little-endian binary container (magic + version + sections)
 * covering the memory-ordering logs, the input logs, the execution
 * fingerprint, the headline statistics and any system checkpoints.
 *
 * save(load(x)) == x for everything replay needs; see
 * tests/test_serialize.cpp.
 */

#ifndef DELOREAN_CORE_SERIALIZE_HPP_
#define DELOREAN_CORE_SERIALIZE_HPP_

#include <iosfwd>
#include <string>

#include "core/recording.hpp"

namespace delorean
{

/** Serialize @p rec to @p out. Throws std::runtime_error on failure. */
void saveRecording(const Recording &rec, std::ostream &out);

/** Serialize @p rec to file @p path. */
void saveRecordingFile(const Recording &rec, const std::string &path);

/**
 * Deserialize a Recording. Throws RecordingFormatError on any
 * malformed input: truncated stream, bad magic/version, or fields
 * outside the range the recorder can produce. A recording returned
 * from here has passed validateRecording(), so handing it to the
 * replay engine cannot trigger UB (it may still diverge, which the
 * engine reports with typed ReplayError exceptions).
 */
Recording loadRecording(std::istream &in);

/** Deserialize a Recording from file @p path. */
Recording loadRecordingFile(const std::string &path);

/**
 * Check the semantic invariants a recorder-produced Recording always
 * satisfies (field ranges, cross-section size agreements, log entry
 * bounds). Throws RecordingFormatError naming the first violation.
 * loadRecording() runs this automatically; it is exposed for
 * recordings arriving by other paths (e.g. the fault injector).
 */
void validateRecording(const Recording &rec);

/**
 * Field-range checks for just the machine/mode headers — the subset
 * of validateRecording() that must run before a loader allocates
 * anything sized by header fields. Exposed for the archive reader
 * (src/store), whose footer carries the same headers.
 */
void validateRecordingConfigs(const MachineConfig &machine,
                              const ModeConfig &mode);

} // namespace delorean

#endif // DELOREAN_CORE_SERIALIZE_HPP_
