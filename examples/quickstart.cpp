/**
 * @file
 * Quickstart: record a multithreaded execution, replay it with
 * different timing, and verify the replay is deterministic.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/delorean.hpp"

int
main()
{
    using namespace delorean;

    // An 8-processor CMP (Table 5 defaults) running a radix-sort-like
    // workload, scaled down for a quick demo.
    MachineConfig machine;
    Workload workload("radix", machine.numProcs, /*seed=*/12345,
                      WorkloadScale{40});

    // --- Record under OrderOnly -----------------------------------------
    Recorder recorder(ModeConfig::orderOnly(), machine);
    Recording rec = recorder.record(workload, /*env_seed=*/1);

    const LogSizeReport sizes = rec.logSizes();
    std::printf("recorded %s: %llu instructions, %llu chunk commits\n",
                rec.appName.c_str(),
                static_cast<unsigned long long>(rec.stats.retiredInstrs),
                static_cast<unsigned long long>(rec.stats.committedChunks));
    std::printf("  memory-ordering log: %.2f bits/proc/kilo-instruction "
                "(%.2f compressed)\n",
                sizes.bitsPerProcPerKiloInstr(false),
                sizes.bitsPerProcPerKiloInstr(true));
    std::printf("  squashes: %llu, overflow truncations: %llu\n",
                static_cast<unsigned long long>(rec.stats.squashes),
                static_cast<unsigned long long>(
                    rec.stats.overflowTruncations));

    // --- Replay with perturbed timing -------------------------------------
    ReplayPerturbation perturb;
    perturb.enabled = true;
    perturb.seed = 99;

    Replayer replayer;
    const ReplayOutcome out = replayer.replay(rec, /*env_seed=*/2, perturb);

    std::printf("replayed: %llu cycles vs %llu recorded (%.0f%% speed)\n",
                static_cast<unsigned long long>(out.stats.totalCycles),
                static_cast<unsigned long long>(rec.stats.totalCycles),
                100.0 * static_cast<double>(rec.stats.totalCycles)
                    / static_cast<double>(out.stats.totalCycles));
    std::printf("deterministic replay: %s\n",
                out.deterministicExact ? "YES (exact interleaving)"
                                       : "NO — BUG");
    return out.deterministicExact ? 0 : 1;
}
