/**
 * @file
 * Execution-mode trade-off explorer (Table 2 of the paper).
 *
 * Runs one workload under Order&Size, OrderOnly, Stratified OrderOnly
 * and PicoLog and prints, for each: recording speed relative to RC,
 * memory-ordering log size, replay speed, and a projected log volume
 * in GB/day for the 8-processor 5 GHz machine — the numbers a user
 * would weigh when choosing a mode for production-run recording.
 */

#include <cstdio>

#include "core/delorean.hpp"

using namespace delorean;

int
main()
{
    MachineConfig machine;
    Workload workload("sjbb2k", machine.numProcs, /*seed=*/2026,
                      WorkloadScale{30});

    InterleavedExecutor rc_exec(machine, ConsistencyModel::kRC);
    const double rc = static_cast<double>(rc_exec.run(workload, 1).cycles);

    struct Row
    {
        const char *name;
        ModeConfig mode;
    };
    ModeConfig strat = ModeConfig::orderOnly();
    strat.stratifyChunksPerProc = 1;
    const Row rows[] = {
        {"Order&Size", ModeConfig::orderAndSize()},
        {"OrderOnly", ModeConfig::orderOnly()},
        {"StratifiedOO", strat},
        {"PicoLog", ModeConfig::picoLog()},
    };

    std::printf("mode trade-offs on %s (%u procs, vs RC):\n\n",
                workload.name().c_str(), machine.numProcs);
    std::printf("%-14s %9s %12s %11s %10s %9s\n", "mode", "rec xRC",
                "log b/p/ki", "replay xRC", "GB/day", "det?");

    Replayer replayer;
    for (const Row &row : rows) {
        Recorder recorder(row.mode, machine);
        const Recording rec = recorder.record(workload, 1);
        const LogSizeReport sizes = rec.logSizes();
        const double bits = sizes.bitsPerProcPerKiloInstr(true);

        ReplayPerturbation perturb;
        perturb.enabled = true;
        perturb.seed = 42;
        const ReplayOutcome out =
            replayer.replay(rec, workload, 9, perturb);

        // bits/proc/kilo-inst -> GB/day for 8 procs at 5 GHz, IPC 1.
        const double gb_day = bits / 1000.0 * machine.proc.ghz * 1e9
                              * machine.numProcs * 86400.0 / 8.0 / 1e9;
        const bool det = rec.stratified() ? out.deterministicPerProc
                                          : out.deterministicExact;
        std::printf("%-14s %9.2f %12.3f %11.2f %10.1f %9s\n", row.name,
                    rc / static_cast<double>(rec.stats.totalCycles),
                    bits,
                    rc / static_cast<double>(out.stats.totalCycles),
                    gb_day, det ? "yes" : "NO");
    }

    std::printf("\npaper (Table 1/Sec 6): OrderOnly records at ~RC "
                "speed, replays at 0.82xRC with a very small log; "
                "PicoLog trades ~14%% recording speed for a nearly "
                "nil log (~20 GB/day at 8x5GHz).\n");
    return 0;
}
