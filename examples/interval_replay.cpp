/**
 * @file
 * Interval replay (Appendix B): record with periodic system
 * checkpoints, persist the recording, reload it, and replay only the
 * tail interval — the workflow of a developer zooming in on the end
 * of a long recording without re-executing the whole run.
 */

#include <cstdio>

#include "core/delorean.hpp"
#include "core/serialize.hpp"

using namespace delorean;

int
main()
{
    MachineConfig machine;
    Workload workload("fmm", machine.numProcs, /*seed=*/88,
                      WorkloadScale{30});

    // Record with checkpoints at GCC = 100 and GCC = 300.
    Recorder recorder(ModeConfig::orderOnly(), machine);
    const Recording rec =
        recorder.record(workload, /*env=*/1, true, {100, 300});
    std::printf("recorded %llu chunk commits with %zu checkpoints\n",
                static_cast<unsigned long long>(
                    rec.stats.committedChunks),
                rec.checkpoints.size());

    // Persist and reload — the recording survives the process.
    const std::string path = "/tmp/delorean_interval_demo.bin";
    saveRecordingFile(rec, path);
    const Recording loaded = loadRecordingFile(path);
    std::printf("saved + reloaded recording from %s\n", path.c_str());

    Replayer replayer;
    ReplayPerturbation perturb;
    perturb.enabled = true;
    perturb.seed = 7;

    // Full replay vs interval replays.
    const ReplayOutcome full = replayer.replay(loaded, 11, perturb);
    std::printf("full replay:           %7llu instrs, deterministic=%s\n",
                static_cast<unsigned long long>(
                    full.stats.retiredInstrs),
                full.deterministicExact ? "yes" : "NO");

    bool ok = full.deterministicExact;
    for (std::size_t i = 0; i < loaded.checkpoints.size(); ++i) {
        const ReplayOutcome part = replayer.replayInterval(
            loaded, i, workload, 13 + i, perturb);
        std::printf("interval from GCC=%-4llu %7llu instrs, "
                    "deterministic=%s\n",
                    static_cast<unsigned long long>(
                        loaded.checkpoints[i].gcc),
                    static_cast<unsigned long long>(
                        part.stats.retiredInstrs),
                    part.deterministicExact ? "yes" : "NO");
        ok = ok && part.deterministicExact;
    }

    std::printf("%s\n", ok ? "interval replay reproduces every "
                             "suffix of the recording exactly."
                           : "BUG: interval replay diverged.");
    return ok ? 0 : 1;
}
