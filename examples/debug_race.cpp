/**
 * @file
 * Concurrency-debugging scenario — the paper's motivating use case.
 *
 * A bug that only manifests under a particular interleaving is
 * useless to chase with a normal debugger: every run interleaves
 * differently. With DeLorean, the production run is recorded once;
 * afterwards the developer can re-execute it as many times as needed
 * — under arbitrary timing — and always observe the *same*
 * interleaving, down to the lock hand-off order.
 *
 * This example records a lock-heavy workload, extracts the global
 * commit interleaving around the most contended period, and then
 * replays five times with aggressive timing perturbation, verifying
 * that every replay reproduces the identical interleaving.
 */

#include <cstdio>

#include "core/delorean.hpp"

using namespace delorean;

int
main()
{
    MachineConfig machine;
    Workload workload("raytrace", machine.numProcs, /*seed=*/5150,
                      WorkloadScale{30});

    std::printf("recording one production run of %s (%u procs)...\n",
                workload.name().c_str(), machine.numProcs);
    Recorder recorder(ModeConfig::orderOnly(), machine);
    const Recording rec = recorder.record(workload, /*env_seed=*/1);
    std::printf("  %llu instructions, %llu chunk commits, %llu squashes\n",
                static_cast<unsigned long long>(rec.stats.retiredInstrs),
                static_cast<unsigned long long>(rec.stats.committedChunks),
                static_cast<unsigned long long>(rec.stats.squashes));

    // "The bug manifested around commit #100" — inspect the recorded
    // interleaving there. This window will be byte-identical in every
    // replay.
    std::printf("\ncommit interleaving around the suspect window:\n  ");
    const std::size_t lo = 100;
    for (std::size_t i = lo; i < lo + 24 && i < rec.pi.entryCount(); ++i)
        std::printf("P%u ", rec.pi.entryAt(i));
    std::printf("...\n");

    std::printf("\nreplaying 5 times with random timing perturbation:\n");
    Replayer replayer;
    bool all_ok = true;
    for (unsigned run = 1; run <= 5; ++run) {
        ReplayPerturbation perturb;
        perturb.enabled = true;
        perturb.seed = run * 1000;
        perturb.hitMissSwapPerMille = 50;
        const ReplayOutcome out =
            replayer.replay(rec, workload, /*env=*/run * 7, perturb);
        std::printf("  run %u: %llu cycles, interleaving %s\n", run,
                    static_cast<unsigned long long>(out.stats.totalCycles),
                    out.deterministicExact ? "IDENTICAL" : "DIVERGED!");
        all_ok = all_ok && out.deterministicExact;
    }

    std::printf("\n%s\n",
                all_ok ? "every replay reproduced the recorded "
                         "interleaving bit-for-bit."
                       : "BUG: replay diverged.");
    return all_ok ? 0 : 1;
}
