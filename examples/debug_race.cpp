/**
 * @file
 * Race-debugging scenario — the paper's motivating use case, taken
 * all the way to a diagnosis.
 *
 * A data race that only manifests under a particular interleaving is
 * useless to chase with a normal debugger: every run interleaves
 * differently, and attaching instrumentation perturbs the timing that
 * made the bug appear. With DeLorean the production run is recorded
 * once; afterwards the developer replays it with a happens-before
 * race detector attached as a replay observer — heavyweight analysis
 * at zero recording cost — and gets the racing accesses with full
 * provenance (processor, chunk, canonical commit position).
 *
 * This example records a "buggy build" (a seeded-race variant of the
 * raytrace workload, whose planted races are known from the
 * manifest), replays with the detector under aggressive timing
 * perturbation, and shows that every replay yields the byte-identical
 * race report — the analysis is deterministic because the replay is.
 */

#include <cstdio>
#include <set>

#include "analysis/race_detector.hpp"
#include "core/delorean.hpp"
#include "trace/app_profile.hpp"
#include "validate/replay_check.hpp"

using namespace delorean;

int
main()
{
    // The "buggy build": raytrace with 2 seeded unsynchronized words.
    // In a real deployment this would be production code with an
    // unknown race; here the manifest tells us the ground truth so
    // the example can check itself.
    MachineConfig machine;
    Workload workload("raytrace~r2", machine.numProcs, /*seed=*/5150,
                      WorkloadScale{30});

    std::printf("recording one production run of %s (%u procs)...\n",
                workload.name().c_str(), machine.numProcs);
    Recorder recorder(ModeConfig::orderOnly(), machine);
    const Recording rec = recorder.record(workload, /*env_seed=*/1);
    std::printf("  %llu instructions, %llu chunk commits, "
                "%llu squashes\n",
                static_cast<unsigned long long>(rec.stats.retiredInstrs),
                static_cast<unsigned long long>(
                    rec.stats.committedChunks),
                static_cast<unsigned long long>(rec.stats.squashes));

    // Replay with the race detector attached. The detector is a
    // ReplayObserver: it sees every chunk retire in canonical commit
    // order with the chunk's memory trace, derives happens-before
    // from that order plus the lock/barrier accesses, and reports
    // unordered conflicting pairs.
    std::printf("\nreplaying with the happens-before race detector "
                "attached:\n");
    ReplayCheckOptions opts;
    opts.detectRaces = true;
    const ReplayCheckResult first = checkedReplay(rec, opts);
    if (!first.ok) {
        std::printf("BUG: replay diverged:\n%s\n",
                    first.report.describe().c_str());
        return 1;
    }
    std::printf("%s", first.races.describe().c_str());

    // Cross-check against the ground truth the seeded variant
    // planted.
    const std::vector<Addr> manifest =
        seededRaceManifest(AppTable::byName(workload.name()));
    std::set<Addr> found;
    for (const RaceFinding &f : first.races.findings)
        found.insert(f.word);
    const bool manifest_exact =
        found == std::set<Addr>(manifest.begin(), manifest.end());
    std::printf("  manifest check: %zu planted race word(s), "
                "detection %s\n",
                manifest.size(),
                manifest_exact ? "EXACT" : "WRONG!");

    // The payoff: re-run the analysis under wildly different replay
    // timing. A dynamic detector on a live run would see a different
    // interleaving every time; on a DeLorean replay the report is a
    // pure function of the recording.
    std::printf("\nre-running the detector 5 times with random "
                "timing perturbation:\n");
    bool all_ok = manifest_exact;
    for (unsigned run = 1; run <= 5; ++run) {
        ReplayCheckOptions popts = opts;
        popts.envSeed = run * 7;
        popts.perturb.enabled = true;
        popts.perturb.seed = run * 1000;
        popts.perturb.hitMissSwapPerMille = 50;
        const ReplayCheckResult again = checkedReplay(rec, popts);
        const bool same =
            again.ok
            && again.races.describe() == first.races.describe();
        std::printf("  run %u: report %s\n", run,
                    same ? "IDENTICAL" : "DIVERGED!");
        all_ok = all_ok && same;
    }

    std::printf("\n%s\n",
                all_ok ? "every replay reproduced the identical race "
                         "report, racing accesses pinned to exact "
                         "chunks and commit positions."
                       : "BUG: race analysis was not deterministic.");
    return all_ok ? 0 : 1;
}
